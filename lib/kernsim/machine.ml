type ns = Time.ns

let nothing () = ()

type core = {
  id : int;
  mutable curr : int; (* pid currently dispatched; -1 = none.  Int-encoded
                         so the dispatch loop never boxes an option. *)
  mutable last_pid : int; (* previously dispatched pid, for switch cost *)
  mutable seg_run_start : ns; (* when the current task's compute started *)
  mutable seg_busy_from : ns; (* busy-time accounting start (incl. overhead) *)
  mutable pending_charge : ns; (* overhead to pay before the next dispatch *)
  mutable resched_queued : bool;
  mutable in_idle : bool; (* the core entered the idle loop *)
  mutable idle_since : ns;
  (* Pre-bound per-core event cells: the run-end timer ends the current
     task's compute segment and the custom timer carries a class's
     [set_timer] request.  Both are reusable [Sim.timer]s, so descheduling
     cancels in O(1) instead of leaving a tombstone event to dead-dispatch,
     and re-arming allocates nothing. *)
  mutable run_end : Sim.timer;
  mutable custom_timer : Sim.timer;
  (* the class slot whose [set_timer] armed [custom_timer] last *)
  mutable timer_slot : Sched_class.t option ref;
  (* one shared closure per core: resched events are never cancelled, so
     they don't need a cell, just an allocation-free thunk *)
  mutable resched_thunk : unit -> unit;
}

type chan = { mutable count : int; waiters : Ds.Int_deque.t }

(* Registry handles resolved once at construction so the hot paths pay one
   option match plus an array increment, never a by-name lookup. *)
type obs = {
  o_schedules : Metrics.Registry.counter;
  o_ctx_switches : Metrics.Registry.counter;
  o_migrations : Metrics.Registry.counter;
  o_wakeup_lat : Metrics.Registry.histogram;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  costs : Costs.t;
  metrics : Accounting.t;
  obs : obs option;
  tracer : Trace.Tracer.t option;
  tr_on : bool; (* guards event construction, not just the emit *)
  cores : core array;
  mutable classes : Sched_class.t array;
  (* Dense pid-indexed task table: pids are handed out contiguously from 1,
     so lookup is a bounds check plus an array load and iterating ascending
     indices is exactly spawn order (which keeps failover adoption and
     [tasks] deterministic). *)
  mutable task_arr : Task.t option array;
  mutable next_pid : int;
  mutable chans : chan array;
  mutable nr_chans : int;
  mutable ctx_cpu : int; (* cpu whose kernel context is executing *)
  (* last accounting group touched: segments overwhelmingly repeat one
     group, so this memo makes per-segment accounting hash-free.  Two flat
     mutable fields, not an option of a pair: the miss path must not
     allocate either (alternating groups would otherwise box a tuple per
     segment).  [acct_memo_c] starts as a detached null handle. *)
  mutable acct_memo_g : string;
  mutable acct_memo_c : Accounting.cells;
  (* One scratch behaviour context for the whole machine, refilled before
     every behaviour step instead of allocating a record per step.  Safe
     because behaviour calls never nest (wakeups and spawns triggered by a
     step don't run other behaviours synchronously) and the ctx contract
     forbids retention (see {!Task.ctx}). *)
  scratch_ctx : Task.ctx;
  (* Out-of-band payload for the int-encoded verdicts of [next_actions]:
     the run/sleep duration, so the verdict itself is an immediate int
     rather than a boxed polymorphic variant. *)
  mutable verdict_ns : ns;
}

(* [next_actions] verdicts, int-encoded: a `Run/`Sleep polymorphic variant
   would allocate two words per behaviour step.  Durations travel in
   [t.verdict_ns]. *)
let v_run = 0
let v_blocked = 1
let v_sleep = 2
let v_yield = 3
let v_exit = 4

let topology t = t.topo

let costs t = t.costs

let now t = Sim.now t.sim

let metrics t = t.metrics

let sim_backend t = Sim.backend t.sim

let events_dispatched t = Sim.dispatched t.sim

let find_task t pid =
  if pid >= 0 && pid < t.next_pid then Array.unsafe_get t.task_arr pid else None

let get_task t pid =
  match find_task t pid with
  | Some task -> task
  | None -> invalid_arg (Printf.sprintf "Machine: unknown pid %d" pid)

let class_of_policy t policy =
  if policy < 0 || policy >= Array.length t.classes then
    invalid_arg (Printf.sprintf "Machine: unknown policy %d" policy);
  t.classes.(policy)

let class_of_task t (task : Task.t) = class_of_policy t task.policy

let cpu_idle t cpu = t.cores.(cpu).curr < 0

(* Registry recording: one option match when no registry is attached, and
   the record calls never touch simulated time (zero-perturbation). *)
let obs_incr t ~cpu f =
  match t.obs with None -> () | Some o -> Metrics.Registry.incr (f o) ~cpu ()

let obs_observe t ~cpu f v =
  match t.obs with None -> () | Some o -> Metrics.Registry.observe (f o) ~cpu v

(* Every call site is guarded by [if t.tr_on then ...] so that with no
   tracer attached the event payload is never even constructed — emits are
   allocation-free, not merely cheap.  The hot kinds go through the
   tracer's packed entry points: payloads travel as ints straight into the
   ring columns, so a traced run allocates nothing per event either. *)
let tr_exn t = match t.tracer with Some tr -> tr | None -> assert false

let emit_wake t ~cpu ~waker_cpu (task : Task.t) =
  match t.tracer with
  | None -> ()
  | Some tr -> (
    match task.affinity with
    | None -> Trace.Tracer.emit_wakeup tr ~ts:(Sim.now t.sim) ~cpu ~pid:task.pid ~waker_cpu
    | Some _ ->
      (* affinity masks are cold: keep the boxed path rather than teach the
         ring columns to encode lists *)
      Trace.Tracer.emit tr ~ts:(Sim.now t.sim) ~cpu
        (Trace.Event.Wakeup { pid = task.pid; waker_cpu; affinity = task.affinity }))

(* ---------- channels ---------- *)

let new_chan t =
  let ch = { count = 0; waiters = Ds.Int_deque.create () } in
  if t.nr_chans = Array.length t.chans then begin
    let bigger = Array.make (max 8 (2 * Array.length t.chans)) ch in
    Array.blit t.chans 0 bigger 0 t.nr_chans;
    t.chans <- bigger
  end;
  t.chans.(t.nr_chans) <- ch;
  t.nr_chans <- t.nr_chans + 1;
  t.nr_chans - 1

let chan t id =
  if id < 0 || id >= t.nr_chans then invalid_arg "Machine: bad channel id";
  t.chans.(id)

let chan_count t id = (chan t id).count

let chan_waiters t id = Ds.Int_deque.length (chan t id).waiters

(* ---------- charging & resched ---------- *)

(* Overhead charged to a core in its idle loop is hidden by the idleness;
   overhead charged while the core is doing something delays its next
   dispatch. *)
let charge t ~cpu ns =
  let core = t.cores.(cpu) in
  if ns > 0 && not core.in_idle then core.pending_charge <- core.pending_charge + ns

let resched_cpu t cpu =
  let core = t.cores.(cpu) in
  if not core.resched_queued then begin
    core.resched_queued <- true;
    let delay = if cpu = t.ctx_cpu then 0 else t.costs.ipi_latency in
    Sim.after t.sim ~delay core.resched_thunk
  end

(* ---------- accounting ---------- *)

(* [==] on the group string: a hit is definitely the same group, a miss
   merely re-resolves, so the memo can never record into the wrong cell.
   The initial memo is a null handle whose group is a fresh (un-shared)
   string, so the first real lookup always misses. *)
let group_cells t (task : Task.t) =
  if t.acct_memo_g == task.group then t.acct_memo_c
  else begin
    let c = Accounting.cells t.metrics ~group:task.group in
    t.acct_memo_g <- task.group;
    t.acct_memo_c <- c;
    c
  end

(* Checkpoint the running task's consumed cpu time without ending its
   segment, so classes observing [sum_exec] (e.g. at tick) see fresh data. *)
let sync_curr t core =
  if core.curr >= 0 then begin
    let task = get_task t core.curr in
    let now_ = Sim.now t.sim in
    if now_ > core.seg_run_start then begin
      let consumed = min (now_ - core.seg_run_start) task.remaining in
      task.remaining <- task.remaining - consumed;
      task.sum_exec <- task.sum_exec + consumed;
      core.seg_run_start <- now_
    end;
    if now_ > core.seg_busy_from then begin
      Accounting.add_busy_fast t.metrics (group_cells t task) ~cpu:core.id
        (now_ - core.seg_busy_from);
      core.seg_busy_from <- now_
    end
  end

(* ---------- wakeups ---------- *)

let rec wake_task t (task : Task.t) ~waker_cpu =
  match task.state with
  | Task.Blocked ->
    let now_ = Sim.now t.sim in
    task.state <- Task.Runnable;
    task.last_wake <- now_;
    task.wake_pending <- true;
    let cl = class_of_task t task in
    let cpu = cl.select_task_rq task ~waker_cpu in
    let cpu = if Task.allowed_cpu task cpu then cpu else first_allowed t task in
    task.cpu <- cpu;
    if t.tr_on then emit_wake t ~cpu ~waker_cpu task;
    cl.task_wakeup task ~cpu ~waker_cpu;
    charge t ~cpu:waker_cpu t.costs.wakeup_path;
    if cpu_idle t cpu then resched_cpu t cpu
  | Task.Runnable | Task.Running | Task.Dead -> ()

and first_allowed t (task : Task.t) =
  match task.affinity with
  | None -> 0
  | Some [] -> invalid_arg "Machine: empty affinity"
  | Some (c :: _) ->
    if c < 0 || c >= Topology.nr_cpus t.topo then invalid_arg "Machine: bad affinity" else c

and do_wake_chan t ch_id ~waker_cpu =
  let ch = chan t ch_id in
  let pid = Ds.Int_deque.pop_front ch.waiters in
  if pid >= 0 then wake_task t (get_task t pid) ~waker_cpu
  else ch.count <- ch.count + 1

(* ---------- behaviour execution ---------- *)

(* Run the task's behaviour through instantaneous actions until it yields
   an int verdict (see [v_run] etc.) on what the kernel should do with the
   task.  The behaviour context is the machine's reused scratch record:
   refill, call, and never let it escape. *)
and next_actions t core (task : Task.t) =
  let ctx = t.scratch_ctx in
  ctx.Task.now <- Sim.now t.sim;
  ctx.Task.self <- task.pid;
  ctx.Task.cpu <- core.id;
  (ctx.Task.inbox <-
     (match task.inbox with
     | [] -> []
     | inbox ->
       task.inbox <- [];
       List.rev inbox));
  match task.behaviour ctx with
  | Task.Compute d ->
    if d > 0 then begin
      t.verdict_ns <- d;
      v_run
    end
    else next_actions t core task
  | Task.Block ch_id ->
    let ch = chan t ch_id in
    if ch.count > 0 then begin
      ch.count <- ch.count - 1;
      next_actions t core task
    end
    else begin
      Ds.Int_deque.push_back ch.waiters task.pid;
      v_blocked
    end
  | Task.Wake ch_id ->
    do_wake_chan t ch_id ~waker_cpu:core.id;
    next_actions t core task
  | Task.Sleep d ->
    t.verdict_ns <- d;
    v_sleep
  | Task.Yield -> v_yield
  | Task.Send_hint h ->
    (* hint queues are registered per scheduler; any task may write into
       them (the Arachne runtime runs under CFS but talks to the arbiter),
       so the hint is offered to every class *)
    Array.iter (fun (cl : Sched_class.t) -> cl.deliver_hint task h) t.classes;
    next_actions t core task
  | Task.Spawn spec ->
    ignore (spawn t spec);
    next_actions t core task
  | Task.Exit -> v_exit

(* ---------- task creation ---------- *)

and spawn t (spec : Task.spec) =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  if pid >= Array.length t.task_arr then begin
    let bigger = Array.make (max 64 (2 * Array.length t.task_arr)) None in
    Array.blit t.task_arr 0 bigger 0 (Array.length t.task_arr);
    t.task_arr <- bigger
  end;
  let task = Task.make spec ~pid ~now:(Sim.now t.sim) in
  t.task_arr.(pid) <- Some task;
  let cl = class_of_task t task in
  let waker_cpu = t.ctx_cpu in
  let cpu = cl.select_task_rq task ~waker_cpu in
  let cpu = if Task.allowed_cpu task cpu then cpu else first_allowed t task in
  task.cpu <- cpu;
  task.state <- Task.Runnable;
  task.last_wake <- Sim.now t.sim;
  task.wake_pending <- true;
  if t.tr_on then emit_wake t ~cpu ~waker_cpu task;
  cl.task_new task ~cpu;
  if cpu_idle t cpu then resched_cpu t cpu;
  pid

(* ---------- migration ---------- *)

and try_migrate t pid ~to_cpu (cl : Sched_class.t) =
  match find_task t pid with
  | None -> ()
  | Some task ->
    if
      task.state = Task.Runnable && task.cpu <> to_cpu && Task.allowed_cpu task to_cpu
      && (* the task must not be dispatched anywhere *)
      t.cores.(task.cpu).curr <> pid
    then begin
      let from_cpu = task.cpu in
      task.cpu <- to_cpu;
      task.migrations <- task.migrations + 1;
      Accounting.count_migration t.metrics;
      obs_incr t ~cpu:to_cpu (fun o -> o.o_migrations);
      charge t ~cpu:to_cpu t.costs.migration;
      if t.tr_on then
        Trace.Tracer.emit_migrate (tr_exn t) ~ts:(Sim.now t.sim) ~cpu:to_cpu ~pid:task.pid
          ~from_cpu ~to_cpu;
      cl.migrate_task_rq task ~from_cpu ~to_cpu
    end
    else cl.balance_err task ~cpu:to_cpu

(* Move a runnable task between classes: the old class releases it via
   task_departed, the new one adopts it via select_task_rq + task_new. *)
and apply_policy_change t (task : Task.t) ~policy =
  (class_of_task t task).task_departed task ~cpu:task.cpu;
  task.policy <- policy;
  task.pending_policy <- None;
  let new_cl = class_of_policy t policy in
  let cpu = new_cl.select_task_rq task ~waker_cpu:t.ctx_cpu in
  let cpu = if Task.allowed_cpu task cpu then cpu else first_allowed t task in
  task.cpu <- cpu;
  new_cl.task_new task ~cpu;
  if cpu_idle t cpu then resched_cpu t cpu

(* ---------- the schedule operation ---------- *)

(* [pick_from], [dispatch] and [start_segment] are toplevel functions in
   the recursion, not closures inside [do_schedule]: a schedule operation
   is the hottest machine path and must not allocate its own loop. *)

and do_schedule t cpu =
  let core = t.cores.(cpu) in
  core.resched_queued <- false;
  let prev_ctx = t.ctx_cpu in
  t.ctx_cpu <- cpu;
  let prev_pid = core.curr in
  (* deschedule the current task, if any; the pending run-end event is
     truly cancelled (O(1)), not invalidated-and-dead-dispatched *)
  if core.curr >= 0 then begin
    sync_curr t core;
    Sim.cancel t.sim core.run_end;
    let task = get_task t core.curr in
    core.curr <- -1;
    if task.state = Task.Running then begin
      task.state <- Task.Runnable;
      if t.tr_on then Trace.Tracer.emit_preempt (tr_exn t) ~ts:(Sim.now t.sim) ~cpu ~pid:task.pid;
      (class_of_task t task).task_preempt task ~cpu;
      match task.pending_policy with
      | Some policy -> apply_policy_change t task ~policy
      | None -> ()
    end
  end;
  Accounting.count_schedule t.metrics ~cpu;
  obs_incr t ~cpu (fun o -> o.o_schedules);
  let next = pick_from t cpu 0 in
  (if next < 0 then begin
     if not core.in_idle then begin
       core.in_idle <- true;
       core.idle_since <- Sim.now t.sim;
       if t.tr_on then begin
         let tr = tr_exn t and ts = Sim.now t.sim in
         Trace.Tracer.emit_switch tr ~ts ~cpu ~prev:prev_pid ~next:(-1);
         Trace.Tracer.emit_idle tr ~ts ~cpu
       end
     end
   end
   else dispatch t core (get_task t next) ~prev:prev_pid);
  t.ctx_cpu <- prev_ctx

(* balance + pick, classes in priority order, until a task sticks;
   -1 = every class declined *)
and pick_from t cpu i =
  if i >= Array.length t.classes then -1
  else begin
    let cl = t.classes.(i) in
    let bal = cl.balance ~cpu in
    if bal >= 0 then try_migrate t bal ~to_cpu:cpu cl;
    let pid = cl.pick_next_task ~cpu in
    if pid >= 0 then begin
      let task = get_task t pid in
      if task.state = Task.Runnable && task.cpu = cpu then pid
      else begin
        (* a native class returning an unrunnable task is the kernel
           crash the paper describes; surface it loudly *)
        Accounting.count_pick_violation t.metrics;
        invalid_arg
          (Printf.sprintf "Machine: class %s picked invalid pid %d (%s, cpu %d vs %d)"
             cl.name pid
             (Format.asprintf "%a" Task.pp_state task.state)
             task.cpu cpu)
      end
    end
    else pick_from t cpu (i + 1)
  end

and dispatch t core (task : Task.t) ~prev =
  let cpu = core.id in
  (* charge pending overhead + context switch before the task computes *)
  let now_ = Sim.now t.sim in
  let switch_cost = if core.last_pid <> task.pid then t.costs.context_switch else 0 in
  if switch_cost > 0 then begin
    Accounting.count_context_switch t.metrics;
    obs_incr t ~cpu (fun o -> o.o_ctx_switches)
  end;
  let wake_cost =
    if core.in_idle then
      if now_ - core.idle_since >= t.costs.deep_idle_after then t.costs.deep_idle_exit
      else t.costs.idle_exit
    else 0
  in
  core.in_idle <- false;
  let overhead = core.pending_charge + switch_cost + wake_cost in
  core.pending_charge <- 0;
  core.seg_busy_from <- now_;
  core.curr <- task.pid;
  core.last_pid <- task.pid;
  task.state <- Task.Running;
  if t.tr_on then begin
    let tr = tr_exn t in
    Trace.Tracer.emit_switch tr ~ts:now_ ~cpu ~prev ~next:task.pid;
    Trace.Tracer.emit_dispatch tr ~ts:now_ ~cpu ~pid:task.pid
  end;
  let run_start = now_ + overhead in
  if task.wake_pending then begin
    task.wake_pending <- false;
    Accounting.record_wakeup_fast t.metrics (group_cells t task) (run_start - task.last_wake);
    obs_observe t ~cpu (fun o -> o.o_wakeup_lat) (run_start - task.last_wake)
  end;
  (* the behaviour advances only once the dispatch costs have elapsed;
     a task with no compute left runs its next actions at [run_start] *)
  start_segment t core task ~run_start

and start_segment t core (task : Task.t) ~run_start =
  core.seg_run_start <- run_start;
  Sim.arm_at t.sim core.run_end ~time:(run_start + task.remaining)

(* What to do when a task's behaviour stopped computing ([verdict] is one
   of the int codes; [v_run] never reaches here). *)
and apply_verdict t core (task : Task.t) verdict =
  let cpu = core.id in
  let cl = class_of_task t task in
  if verdict = v_blocked then begin
    task.state <- Task.Blocked;
    if t.tr_on then Trace.Tracer.emit_block (tr_exn t) ~ts:(Sim.now t.sim) ~cpu ~pid:task.pid;
    cl.task_blocked task ~cpu
  end
  else if verdict = v_sleep then begin
    task.state <- Task.Blocked;
    if t.tr_on then Trace.Tracer.emit_block (tr_exn t) ~ts:(Sim.now t.sim) ~cpu ~pid:task.pid;
    cl.task_blocked task ~cpu;
    let pid = task.pid in
    Sim.after t.sim ~delay:t.verdict_ns (fun () ->
        match find_task t pid with
        | Some task when task.state = Task.Blocked ->
          (* timer fires on the cpu the task last ran on *)
          let prev = t.ctx_cpu in
          t.ctx_cpu <- task.cpu;
          wake_task t task ~waker_cpu:task.cpu;
          t.ctx_cpu <- prev
        | Some _ | None -> ())
  end
  else if verdict = v_yield then begin
    task.state <- Task.Runnable;
    if t.tr_on then Trace.Tracer.emit_yield (tr_exn t) ~ts:(Sim.now t.sim) ~cpu ~pid:task.pid;
    cl.task_yield task ~cpu
  end
  else begin
    assert (verdict = v_exit);
    task.state <- Task.Dead;
    task.exited_at <- Some (Sim.now t.sim);
    if t.tr_on then Trace.Tracer.emit_exit (tr_exn t) ~ts:(Sim.now t.sim) ~cpu ~pid:task.pid;
    cl.task_dead task ~cpu
  end

(* The running task finished its compute quantum: advance its behaviour. *)
and segment_end t cpu (task : Task.t) =
  let core = t.cores.(cpu) in
  let prev_ctx = t.ctx_cpu in
  t.ctx_cpu <- cpu;
  sync_curr t core;
  let verdict = next_actions t core task in
  (if verdict = v_run then begin
     let d = t.verdict_ns in
     task.remaining <- d;
     (* continue on-cpu without a context switch: re-arm the same cell *)
     core.seg_run_start <- Sim.now t.sim;
     Sim.arm_at t.sim core.run_end ~time:(Sim.now t.sim + d)
   end
   else begin
     core.curr <- -1;
     apply_verdict t core task verdict;
     do_schedule t cpu
   end);
  t.ctx_cpu <- prev_ctx

(* ---------- ticks & timers ---------- *)

let tick t =
  let nr = Topology.nr_cpus t.topo in
  (* refresh accounting so classes see up-to-date runtimes *)
  for cpu = 0 to nr - 1 do
    sync_curr t t.cores.(cpu);
    if t.tr_on then Trace.Tracer.emit_tick (tr_exn t) ~ts:(Sim.now t.sim) ~cpu
  done;
  Array.iter
    (fun (cl : Sched_class.t) ->
      for cpu = 0 to nr - 1 do
        let prev = t.ctx_cpu in
        t.ctx_cpu <- cpu;
        cl.task_tick ~cpu ~queued:(t.cores.(cpu).curr >= 0);
        t.ctx_cpu <- prev
      done)
    t.classes;
  (* newidle-style pull for cpus sitting idle between wakeups *)
  for cpu = 0 to nr - 1 do
    if cpu_idle t cpu && not t.cores.(cpu).resched_queued then begin
      let prev = t.ctx_cpu in
      t.ctx_cpu <- cpu;
      do_schedule t cpu;
      t.ctx_cpu <- prev
    end
  done

(* ---------- construction ---------- *)

let create ?(costs = Costs.default) ?registry ?tracer ?sim_backend ~topology ~classes () =
  let nr = Topology.nr_cpus topology in
  let obs =
    Option.map
      (fun reg ->
        {
          o_schedules =
            Metrics.Registry.counter reg ~help:"schedule operations" "sched_schedules_total";
          o_ctx_switches =
            Metrics.Registry.counter reg ~help:"context switches charged"
              "sched_context_switches_total";
          o_migrations =
            Metrics.Registry.counter reg ~help:"task migrations" "sched_migrations_total";
          o_wakeup_lat =
            Metrics.Registry.histogram reg ~help:"wakeup-to-dispatch latency (ns)"
              "sched_wakeup_latency_ns";
        })
      registry
  in
  let sim = Sim.create ?backend:sim_backend () in
  (* placeholder cell, replaced per core below; never armed *)
  let dummy_tm = Sim.timer sim nothing in
  let cores =
    Array.init nr (fun id ->
        {
          id;
          curr = -1;
          last_pid = -1;
          seg_run_start = 0;
          seg_busy_from = 0;
          pending_charge = 0;
          resched_queued = false;
          in_idle = true;
          idle_since = 0;
          run_end = dummy_tm;
          custom_timer = dummy_tm;
          timer_slot = ref None;
          resched_thunk = nothing;
        })
  in
  let t =
    {
      sim;
      topo = topology;
      costs;
      metrics = Accounting.create ~nr_cpus:nr;
      obs;
      tracer;
      tr_on = (match tracer with Some _ -> true | None -> false);
      cores;
      classes = [||];
      task_arr = Array.make 64 None;
      next_pid = 1;
      chans = [||];
      nr_chans = 0;
      ctx_cpu = 0;
      (* String.make, not a literal: literals are shared, and a real task
         group equal to the sentinel must still miss on the first lookup *)
      acct_memo_g = String.make 1 '\000';
      acct_memo_c = Accounting.null_cells ();
      scratch_ctx = { Task.now = 0; self = 0; cpu = 0; inbox = [] };
      verdict_ns = 0;
    }
  in
  (* Bind each core's event cells and thunks exactly once: every schedule,
     segment end, resched and class timer after this point reuses them. *)
  Array.iter
    (fun core ->
      let cpu = core.id in
      core.resched_thunk <- (fun () -> do_schedule t cpu);
      core.run_end <-
        Sim.timer sim (fun () ->
            (* armed only while a task is dispatched; cancelled on
               deschedule, so firing means [curr] is the segment's task *)
            if core.curr >= 0 then segment_end t cpu (get_task t core.curr));
      core.custom_timer <-
        Sim.timer sim (fun () ->
            match !(core.timer_slot) with
            | Some cl ->
              let prev = t.ctx_cpu in
              t.ctx_cpu <- cpu;
              sync_curr t core;
              cl.task_tick ~cpu ~queued:(core.curr >= 0);
              t.ctx_cpu <- prev
            | None -> ()))
    cores;
  let make_ops (slot : Sched_class.t option ref) : Sched_class.kernel_ops =
    {
      now = (fun () -> Sim.now t.sim);
      nr_cpus = nr;
      topology;
      costs;
      defer = (fun ~delay f -> Sim.after t.sim ~delay f);
      resched_cpu = (fun cpu -> resched_cpu t cpu);
      set_timer =
        (fun ~cpu delay ->
          let core = t.cores.(cpu) in
          charge t ~cpu costs.timer_arm;
          (* last arm wins, exactly like the kernel's per-cpu hrtimer; the
             firing callback reads the arming class's slot *)
          core.timer_slot <- slot;
          Sim.arm_after t.sim core.custom_timer ~delay);
      cancel_timer = (fun ~cpu -> Sim.cancel t.sim t.cores.(cpu).custom_timer);
      charge = (fun ~cpu ns -> charge t ~cpu ns);
      send_user =
        (fun ~pid hint ->
          match find_task t pid with
          | Some task -> task.inbox <- hint :: task.inbox
          | None -> ());
      current =
        (fun ~cpu ->
          let pid = t.cores.(cpu).curr in
          if pid >= 0 then find_task t pid else None);
      cpu_is_idle = (fun cpu -> cpu_idle t cpu);
      find_task = (fun pid -> find_task t pid);
      live_tasks =
        (fun ~policy ->
          (* ascending pid = spawn order keeps failover adoption deterministic *)
          let rec collect pid acc =
            if pid = 0 then acc
            else
              collect (pid - 1)
                (match t.task_arr.(pid) with
                | Some (task : Task.t) when task.policy = policy && task.state <> Task.Dead ->
                  task :: acc
                | Some _ | None -> acc)
          in
          collect (t.next_pid - 1) []);
    }
  in
  let instantiated =
    List.map
      (fun factory ->
        let slot = ref None in
        let cl = factory (make_ops slot) in
        slot := Some cl;
        cl)
      classes
  in
  t.classes <- Array.of_list instantiated;
  (* Probes read machine state at sample/export time; they never run on a
     scheduling path, so they may sweep the task table freely. *)
  let count_tasks f =
    let n = ref 0 in
    for pid = 1 to t.next_pid - 1 do
      match Array.unsafe_get t.task_arr pid with
      | Some task -> if f task then incr n
      | None -> ()
    done;
    !n
  in
  (match registry with
  | Some reg ->
    Metrics.Registry.gauge_probe reg ~help:"runnable tasks (queued or running)"
      "machine_runq_depth" (fun () ->
        float_of_int (count_tasks (fun (task : Task.t) -> task.state = Task.Runnable)));
    Metrics.Registry.gauge_probe reg ~help:"tasks not yet exited" "machine_tasks_alive"
      (fun () ->
        float_of_int (count_tasks (fun (task : Task.t) -> task.state <> Task.Dead)));
    Metrics.Registry.gauge_probe reg ~help:"cumulative busy ns across cpus"
      "machine_busy_ns_total" (fun () -> float_of_int (Accounting.total_busy t.metrics));
    Metrics.Registry.gauge_probe reg ~help:"cumulative idle ns across cpus"
      "machine_idle_ns_total" (fun () ->
        float_of_int ((nr * Sim.now t.sim) - Accounting.total_busy t.metrics))
  | None -> ());
  (* the periodic tick re-arms itself: one closure for the whole run *)
  let rec tick_fire () =
    tick t;
    Sim.after t.sim ~delay:t.costs.tick_period tick_fire
  in
  Sim.after t.sim ~delay:t.costs.tick_period tick_fire;
  t

(* ---------- public control ---------- *)

let tasks t =
  let rec collect t pid acc =
    if pid = 0 then acc
    else
      collect t (pid - 1)
        (match t.task_arr.(pid) with Some task -> task :: acc | None -> acc)
  in
  collect t (t.next_pid - 1) []

let alive_tasks t =
  let n = ref 0 in
  for pid = 1 to t.next_pid - 1 do
    match Array.unsafe_get t.task_arr pid with
    | Some (task : Task.t) -> if task.state <> Task.Dead then incr n
    | None -> ()
  done;
  !n

let set_nice t ~pid ~nice =
  let task = get_task t pid in
  task.nice <- nice;
  (class_of_task t task).task_prio_changed task

let rec enforce_affinity t pid =
  match find_task t pid with
  | None -> ()
  | Some task ->
    if not (Task.allowed_cpu task task.cpu) then begin
      match task.state with
      | Task.Runnable ->
        (* sitting on a forbidden rq: move it now *)
        let cl = class_of_task t task in
        let to_cpu = first_allowed t task in
        let from_cpu = task.cpu in
        task.cpu <- to_cpu;
        task.migrations <- task.migrations + 1;
        Accounting.count_migration t.metrics;
        obs_incr t ~cpu:to_cpu (fun o -> o.o_migrations);
        if t.tr_on then
          Trace.Tracer.emit_migrate (tr_exn t) ~ts:(Sim.now t.sim) ~cpu:to_cpu ~pid:task.pid
            ~from_cpu ~to_cpu;
        cl.migrate_task_rq task ~from_cpu ~to_cpu;
        if cpu_idle t to_cpu then resched_cpu t to_cpu
      | Task.Running ->
        (* kick it off the forbidden cpu, then finish the move *)
        resched_cpu t task.cpu;
        Sim.after t.sim ~delay:(t.costs.ipi_latency + 1) (fun () -> enforce_affinity t pid)
      | Task.Blocked | Task.Dead -> ()
    end

let set_affinity t ~pid affinity =
  let task = get_task t pid in
  task.affinity <- affinity;
  (class_of_task t task).task_affinity_changed task;
  enforce_affinity t pid

let set_policy t ~pid ~policy =
  let task = get_task t pid in
  ignore (class_of_policy t policy);
  if policy <> task.policy then
    match task.state with
    | Task.Running ->
      (* applied by do_schedule once the task is off its cpu *)
      task.pending_policy <- Some policy;
      resched_cpu t task.cpu
    | Task.Runnable ->
      apply_policy_change t task ~policy
    | Task.Blocked ->
      (* not queued anywhere: depart the old class now; the new class
         adopts the task at its next wakeup *)
      (class_of_task t task).task_departed task ~cpu:task.cpu;
      task.policy <- policy
    | Task.Dead -> ()

let at t ~delay f = Sim.after t.sim ~delay f

(* External ingress doorbell: a V on the channel from outside any task —
   the simulated analogue of a NIC interrupt delivering work into the
   machine.  The wakeup path is charged to cpu 0 (the IRQ core). *)
let signal t ch_id = do_wake_chan t ch_id ~waker_cpu:0

let run_until t until = Sim.run_until t.sim ~until

let run_for t d = Sim.run_until t.sim ~until:(Sim.now t.sim + d)

let run_to_completion t = Sim.run t.sim

let spawn = spawn

let new_chan = new_chan

let chan_count = chan_count

let chan_waiters = chan_waiters

let cpu_idle = cpu_idle

let class_of_policy = class_of_policy
