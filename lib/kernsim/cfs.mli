(** Native CFS: the simulator's rendering of Linux's Completely Fair
    Scheduler, used as the baseline throughout the paper's evaluation.

    Implements per-cpu weighted fair queuing over a run-queue keyed by
    virtual runtime — an inline binary heap of pids over struct-of-arrays
    entity state, picking exactly the task a (vruntime, pid)-ordered tree
    would (§4.2.1 of the paper describes the algorithm):

    - vruntime accrues as [delta_exec * NICE_0_LOAD / weight], with weights
      from the kernel's nice-to-weight table;
    - newly woken tasks get [max(vruntime, min_vruntime - sched_latency/2)]
      so sleepers do not hoard a vruntime debt;
    - a woken task with sufficiently smaller vruntime preempts the current
      task (wakeup preemption, [wakeup_granularity]);
    - tasks run for a slice of [period * weight / load], where the period
      stretches with the number of runnable tasks (min 6 ms);
    - wake placement prefers the previous cpu, then idle cpus sharing its
      LLC, then its NUMA node; periodic and newidle balancing pull from the
      busiest run-queue, crossing NUMA nodes only past an imbalance
      threshold.

    This class runs "in the kernel": it pays no Enoki dispatch overhead. *)

(** Tunables, defaulting to the Linux values the paper cites. *)
type params = {
  sched_latency : Time.ns;  (** target preemption period, 6 ms *)
  min_granularity : Time.ns;  (** minimum slice, 0.75 ms *)
  wakeup_granularity : Time.ns;  (** wakeup preemption threshold, 1 ms *)
  numa_imbalance_threshold : int;
      (** minimum waiting-task surplus before stealing across NUMA nodes *)
}

val default_params : params

(** CFS weight for a nice level in [-20, 19] (NICE_0 = 1024). *)
val weight_of_nice : int -> int

(** [debug_checks] verifies run-queue/tree consistency after every hook
    (slow; used by the test suite). *)
val factory : ?params:params -> ?debug_checks:bool -> unit -> Sched_class.factory
