type params = {
  sched_latency : Time.ns;
  min_granularity : Time.ns;
  wakeup_granularity : Time.ns;
  numa_imbalance_threshold : int;
}

let default_params =
  {
    sched_latency = Time.us 6_000;
    min_granularity = Time.us 750;
    wakeup_granularity = Time.ms 1;
    numa_imbalance_threshold = 2;
  }

(* Linux's sched_prio_to_weight: weight for nice -20 .. 19. *)
let prio_to_weight =
  [|
    88761; 71755; 56483; 46273; 36291;
    29154; 23254; 18705; 14949; 11916;
    9548; 7620; 6100; 4904; 3906;
    3121; 2501; 1991; 1586; 1277;
    1024; 820; 655; 526; 423;
    335; 272; 215; 172; 137;
    110; 87; 70; 56; 45;
    36; 29; 23; 18; 15;
  |]

let nice_0_load = 1024

let weight_of_nice nice =
  let nice = max (-20) (min 19 nice) in
  prio_to_weight.(nice + 20)

(* Runqueue keys order by (vruntime, pid); the pid tiebreak keeps equal
   vruntimes deterministic. *)
module Key = struct
  type t = int * int

  let compare (v1, p1) (v2, p2) =
    match Int.compare v1 v2 with 0 -> Int.compare p1 p2 | c -> c
end

module Rq_tree = Ds.Rbtree.Make (Key)

type ent = {
  pid : int;
  mutable vruntime : int;
  mutable weight : int;
  mutable on_rq : bool; (* present in some cpu's tree *)
  mutable rq_cpu : int;
  mutable last_sum_exec : Time.ns; (* checkpoint for vruntime deltas *)
  mutable slice_start_exec : Time.ns; (* sum_exec when last dispatched *)
}

type cfs_rq = {
  mutable tree : unit Rq_tree.t;
  mutable min_vruntime : int;
  mutable load_waiting : int; (* sum of weights in the tree *)
  mutable curr : int option; (* pid of the dispatched CFS task, if any *)
}

type t = {
  ops : Sched_class.kernel_ops;
  params : params;
  rqs : cfs_rq array;
  (* Dense pid-indexed views of the adopted tasks: machine pids are handed
     out contiguously, so a bounds check plus an array load replaces the
     hash of every entity lookup on the pick/tick/dequeue hot paths. *)
  mutable ents : ent option array;
  mutable tasks : Task.t option array; (* pid -> task_struct view *)
  mutable last_periodic_check : Time.ns;
}

let find_ent t pid =
  if pid >= 0 && pid < Array.length t.ents then Array.unsafe_get t.ents pid else None

let find_ctask t pid =
  if pid >= 0 && pid < Array.length t.tasks then Array.unsafe_get t.tasks pid else None

let ensure_cap t pid =
  if pid >= Array.length t.ents then begin
    let n = max (pid + 1) (2 * Array.length t.ents) in
    let ents = Array.make n None in
    Array.blit t.ents 0 ents 0 (Array.length t.ents);
    t.ents <- ents;
    let tasks = Array.make n None in
    Array.blit t.tasks 0 tasks 0 (Array.length t.tasks);
    t.tasks <- tasks
  end

let ent_of t (task : Task.t) =
  match find_ent t task.pid with
  | Some e -> e
  | None ->
    let e =
      {
        pid = task.pid;
        vruntime = 0;
        weight = weight_of_nice task.nice;
        on_rq = false;
        rq_cpu = 0;
        last_sum_exec = 0;
        slice_start_exec = 0;
      }
    in
    ensure_cap t task.pid;
    t.ents.(task.pid) <- Some e;
    t.tasks.(task.pid) <- Some task;
    e

let curr_weight t rq =
  match rq.curr with
  | None -> 0
  | Some pid -> ( match find_ent t pid with Some e -> e.weight | None -> 0)

let nr_waiting rq = Rq_tree.cardinal rq.tree

let nr_running rq = nr_waiting rq + if rq.curr = None then 0 else 1

let rq_load t rq = rq.load_waiting + curr_weight t rq

(* vruntime advances inversely to weight. *)
let calc_delta_fair delta weight = delta * nice_0_load / max 1 weight

let update_min_vruntime t rq =
  let candidate =
    match Rq_tree.min_binding_opt rq.tree with
    | Some ((v, _), ()) -> (
      match rq.curr with
      | Some pid -> (
        match find_ent t pid with Some e -> min v e.vruntime | None -> v)
      | None -> v)
    | None -> (
      match rq.curr with
      | Some pid -> (
        match find_ent t pid with Some e -> e.vruntime | None -> rq.min_vruntime)
      | None -> rq.min_vruntime)
  in
  if candidate > rq.min_vruntime then rq.min_vruntime <- candidate

(* Fold freshly consumed cpu time (tracked by the kernel in sum_exec) into
   the entity's vruntime. *)
let update_curr t rq (task : Task.t) =
  let e = ent_of t task in
  let delta = task.sum_exec - e.last_sum_exec in
  if delta > 0 then begin
    e.last_sum_exec <- task.sum_exec;
    e.vruntime <- e.vruntime + calc_delta_fair delta e.weight;
    update_min_vruntime t rq
  end

let tree_insert rq (e : ent) =
  rq.tree <- Rq_tree.add (e.vruntime, e.pid) () rq.tree;
  rq.load_waiting <- rq.load_waiting + e.weight;
  e.on_rq <- true

let tree_remove rq (e : ent) =
  if e.on_rq then begin
    rq.tree <- Rq_tree.remove (e.vruntime, e.pid) rq.tree;
    rq.load_waiting <- rq.load_waiting - e.weight;
    e.on_rq <- false
  end

(* CFS slice: the share of one latency period this entity is owed. *)
let sched_slice t rq (e : ent) =
  let nr = max 1 (nr_running rq) in
  let period =
    if nr > t.params.sched_latency / t.params.min_granularity then
      nr * t.params.min_granularity
    else t.params.sched_latency
  in
  let load = max 1 (rq_load t rq) in
  max t.params.min_granularity (period * e.weight / load)

let place_entity t rq (e : ent) ~newly_woken =
  let floor_v =
    if newly_woken then rq.min_vruntime - calc_delta_fair (t.params.sched_latency / 2) e.weight
    else rq.min_vruntime
  in
  if e.vruntime < floor_v then e.vruntime <- floor_v;
  (* also bound the deficit: queues whose min_vruntime raced ahead (e.g.
     under a lone low-weight task) must not exile this entity for seconds *)
  let ceiling = rq.min_vruntime + t.params.sched_latency in
  if e.vruntime > ceiling then e.vruntime <- ceiling

(* ---------- placement ---------- *)

let allowed (task : Task.t) cpu = Task.allowed_cpu task cpu

let rec find_idle_in t (task : Task.t) cpus =
  match cpus with
  | [] -> None
  | c :: tl ->
    if
      allowed task c && t.ops.cpu_is_idle c && t.rqs.(c).curr = None
      && nr_waiting t.rqs.(c) = 0
    then Some c
    else find_idle_in t task tl

(* weight-based, like find_idlest_cpu: a cpu running only nice-19 batch
   work is much less loaded than one stacked with high-priority tasks *)
let least_loaded t (task : Task.t) =
  let best = ref None in
  for c = 0 to t.ops.nr_cpus - 1 do
    if allowed task c then begin
      let load = rq_load t t.rqs.(c) in
      match !best with
      | Some (_, l) when l <= load -> ()
      | _ -> best := Some (c, load)
    end
  done;
  match !best with Some (c, _) -> c | None -> task.cpu

let select_task_rq t (task : Task.t) ~waker_cpu =
  let prev = task.cpu in
  let topo = t.ops.topology in
  if allowed task prev && t.ops.cpu_is_idle prev && nr_waiting t.rqs.(prev) = 0 then prev
  else
    match find_idle_in t task (Topology.llc_cpus topo prev) with
    | Some c -> c
    | None -> (
      match find_idle_in t task (Topology.node_cpus topo prev) with
      | Some c -> c
      | None -> (
        (* consider the waker's side of the machine before a full scan *)
        match find_idle_in t task (Topology.node_cpus topo waker_cpu) with
        | Some c -> c
        | None -> (
          match find_idle_in t task (Topology.all_cpus topo) with
          | Some c -> c
          | None -> least_loaded t task)))

(* ---------- balancing ---------- *)

(* A pullable waiting task on [from]'s tree, preferring the one that would
   run last (largest vruntime), that may run on [to_cpu]. *)
let steal_candidate t ~from ~to_cpu =
  let rq = t.rqs.(from) in
  let found = ref None in
  Rq_tree.iter
    (fun (_, pid) () ->
      match find_ctask t pid with
      | Some task when allowed task to_cpu -> found := Some pid (* keep last = largest *)
      | Some _ | None -> ())
    rq.tree;
  !found

(* Only run-queues that cannot drain themselves promptly are eligible
   sources: something running plus waiters, or several waiters.  An idle
   cpu with one just-woken task is about to run it — pulling would just
   migrate cache-hot work (real CFS's migration-cost hysteresis). *)
let pullable t c =
  let rq = t.rqs.(c) in
  let w = nr_waiting rq in
  if rq.curr <> None then w else if w >= 2 then w else 0

(* First maximum wins, matching the old fold; toplevel recursion so the
   per-schedule balance scan allocates nothing but its final result. *)
let rec busiest_from t ~excluding cs best_c best_w =
  match cs with
  | [] -> if best_w > 0 then Some (best_c, best_w) else None
  | c :: tl ->
    if c <> excluding then begin
      let w = pullable t c in
      if w > best_w then busiest_from t ~excluding tl c w
      else busiest_from t ~excluding tl best_c best_w
    end
    else busiest_from t ~excluding tl best_c best_w

let busiest_cpu t ~among ~excluding = busiest_from t ~excluding among (-1) 0

let balance t ~cpu =
  let rq = t.rqs.(cpu) in
  let topo = t.ops.topology in
  let here = nr_running rq in
  let local = busiest_cpu t ~among:(Topology.node_cpus topo cpu) ~excluding:cpu in
  let remote () = busiest_cpu t ~among:(Topology.all_cpus topo) ~excluding:cpu in
  let try_pull (src, waiting) ~threshold =
    if waiting >= here + threshold then steal_candidate t ~from:src ~to_cpu:cpu else None
  in
  match local with
  | Some src -> (
    (* newidle: pull whenever someone local is waiting and we are idle;
       periodic: pull only past an imbalance of 2 *)
    let threshold = if here = 0 then 1 else 2 in
    match try_pull src ~threshold with
    | Some pid -> Some pid
    | None ->
      if here = 0 then
        match remote () with
        | Some src -> try_pull src ~threshold:t.params.numa_imbalance_threshold
        | None -> None
      else None)
  | None ->
    if here = 0 then
      match remote () with
      | Some src -> try_pull src ~threshold:t.params.numa_imbalance_threshold
      | None -> None
    else None

(* ---------- hooks ---------- *)

let task_new t (task : Task.t) ~cpu =
  let e = ent_of t task in
  e.weight <- weight_of_nice task.nice;
  e.rq_cpu <- cpu;
  let rq = t.rqs.(cpu) in
  e.vruntime <- rq.min_vruntime;
  e.last_sum_exec <- task.sum_exec;
  tree_insert rq e

let task_wakeup t (task : Task.t) ~cpu ~waker_cpu =
  ignore waker_cpu;
  let e = ent_of t task in
  let rq = t.rqs.(cpu) in
  e.rq_cpu <- cpu;
  place_entity t rq e ~newly_woken:true;
  tree_insert rq e;
  (* wakeup preemption *)
  match rq.curr with
  | Some curr_pid -> (
    match find_ent t curr_pid with
    | Some curr_e ->
      (* granularity scales with the woken entity's weight, as in
         wakeup_gran(): heavy (high-priority) wakers preempt sooner *)
      let gran = calc_delta_fair t.params.wakeup_granularity e.weight in
      if e.vruntime + gran < curr_e.vruntime then t.ops.resched_cpu cpu
    | None -> ())
  | None -> ()

let dequeue_running t (task : Task.t) ~cpu =
  let rq = t.rqs.(cpu) in
  update_curr t rq task;
  if rq.curr = Some task.pid then rq.curr <- None
  else tree_remove rq (ent_of t task)

let task_blocked t (task : Task.t) ~cpu = dequeue_running t task ~cpu

let forget t pid =
  t.ents.(pid) <- None;
  t.tasks.(pid) <- None

let task_dead t (task : Task.t) ~cpu =
  dequeue_running t task ~cpu;
  forget t task.pid

let task_departed t (task : Task.t) ~cpu =
  match find_ent t task.pid with
  | None -> ()
  | Some _ ->
    (if Task.is_runnable task then dequeue_running t task ~cpu);
    forget t task.pid

let requeue_preempted t (task : Task.t) ~cpu =
  let rq = t.rqs.(cpu) in
  update_curr t rq task;
  let e = ent_of t task in
  if rq.curr = Some task.pid then rq.curr <- None;
  if not e.on_rq then begin
    e.rq_cpu <- cpu;
    tree_insert rq e
  end

let task_preempt t (task : Task.t) ~cpu = requeue_preempted t task ~cpu

let task_yield t (task : Task.t) ~cpu = requeue_preempted t task ~cpu

let pick_next_task t ~cpu =
  let rq = t.rqs.(cpu) in
  match Rq_tree.min_binding_opt rq.tree with
  | None -> None
  | Some ((_, pid), ()) -> (
    match find_ent t pid with
    | None -> None
    | Some e ->
      tree_remove rq e;
      rq.curr <- Some pid;
      (match find_ctask t pid with
      | Some task ->
        e.last_sum_exec <- task.sum_exec;
        e.slice_start_exec <- task.sum_exec
      | None -> ());
      Some pid)

let task_tick t ~cpu ~queued =
  ignore queued;
  let rq = t.rqs.(cpu) in
  (match rq.curr with
  | Some pid -> (
    match (find_ctask t pid, find_ent t pid) with
    | Some task, Some e ->
      update_curr t rq task;
      if nr_waiting rq > 0 then begin
        let ran = task.sum_exec - e.slice_start_exec in
        if ran >= sched_slice t rq e then t.ops.resched_cpu cpu
      end
    | _ -> ())
  | None -> ());
  (* periodic balancing: a busy cpu observing a big enough imbalance asks
     itself to reschedule, which runs the balance hook *)
  if rq.curr <> None then begin
    let here = nr_running rq in
    let topo = t.ops.topology in
    match busiest_cpu t ~among:(Topology.node_cpus topo cpu) ~excluding:cpu with
    | Some (_, w) when w >= here + 2 -> t.ops.resched_cpu cpu
    | Some _ | None -> ()
  end

let migrate_task_rq t (task : Task.t) ~from_cpu ~to_cpu =
  let e = ent_of t task in
  let from_rq = t.rqs.(from_cpu) and to_rq = t.rqs.(to_cpu) in
  if from_rq.curr = Some task.pid then from_rq.curr <- None;
  tree_remove from_rq e;
  (* renormalize vruntime relative to the destination queue, carrying at
     most one latency period of credit or debt: min_vruntime diverges wildly
     between queues dominated by different weights, and letting the raw
     offset travel can exile a task behind a low-weight hog for seconds *)
  let cap = t.params.sched_latency in
  let offset = max (-cap) (min cap (e.vruntime - from_rq.min_vruntime)) in
  e.vruntime <- to_rq.min_vruntime + offset;
  e.rq_cpu <- to_cpu;
  if Task.is_runnable task && task.state <> Task.Running then tree_insert to_rq e

let task_prio_changed t (task : Task.t) =
  let e = ent_of t task in
  let rq = t.rqs.(e.rq_cpu) in
  if e.on_rq then begin
    tree_remove rq e;
    e.weight <- weight_of_nice task.nice;
    tree_insert rq e
  end
  else e.weight <- weight_of_nice task.nice

(* Internal consistency check used by tests and while debugging: every
   runnable, non-running task must sit in exactly the tree of its run-queue
   under its current key. *)
let check_consistency t ~hook =
  let iter_tasks f =
    Array.iteri (fun pid task -> match task with Some task -> f pid task | None -> ()) t.tasks
  in
  iter_tasks
    (fun pid (task : Task.t) ->
      match find_ent t pid with
      | None -> ()
      | Some e ->
        let in_tree rq = Rq_tree.find_opt (e.vruntime, e.pid) rq.tree <> None in
        let is_curr = Array.exists (fun rq -> rq.curr = Some pid) t.rqs in
        if task.state = Task.Runnable && not is_curr then begin
          if not e.on_rq then
            failwith
              (Printf.sprintf "cfs[%s]: runnable pid %d not on_rq (task.cpu=%d)" hook pid
                 task.cpu);
          if e.rq_cpu <> task.cpu then
            failwith
              (Printf.sprintf "cfs[%s]: pid %d tree cpu %d but kernel cpu %d" hook pid
                 e.rq_cpu task.cpu);
          if not (in_tree t.rqs.(e.rq_cpu)) then
            failwith
              (Printf.sprintf "cfs[%s]: pid %d (v=%d) missing from tree on cpu %d" hook pid
                 e.vruntime e.rq_cpu)
        end);
  (* a task the kernel is running must be this class's curr on its cpu *)
  iter_tasks
    (fun pid (task : Task.t) ->
      if task.state = Task.Running && find_ent t pid <> None then
        match t.rqs.(task.cpu).curr with
        | Some c when c = pid -> ()
        | other ->
          failwith
            (Printf.sprintf "cfs[%s]: pid %d running on cpu %d but rq.curr=%s" hook pid
               task.cpu
               (match other with Some c -> string_of_int c | None -> "none")))

let factory ?(params = default_params) ?(debug_checks = false) () : Sched_class.factory =
 fun ops ->
  let t =
    {
      ops;
      params;
      rqs =
        Array.init ops.nr_cpus (fun _ ->
            { tree = Rq_tree.empty; min_vruntime = 0; load_waiting = 0; curr = None });
      ents = Array.make 64 None;
      tasks = Array.make 64 None;
      last_periodic_check = 0;
    }
  in
  let checked hook f =
    if debug_checks then (
      fun x ->
        let r = f x in
        check_consistency t ~hook;
        r)
    else f
  in
  {
    Sched_class.name = "cfs";
    select_task_rq = (fun task ~waker_cpu -> select_task_rq t task ~waker_cpu);
    task_new = (fun task ~cpu -> checked "task_new" (fun () -> task_new t task ~cpu) ());
    task_wakeup =
      (fun task ~cpu ~waker_cpu ->
        checked "task_wakeup" (fun () -> task_wakeup t task ~cpu ~waker_cpu) ());
    task_blocked =
      (fun task ~cpu -> checked "task_blocked" (fun () -> task_blocked t task ~cpu) ());
    task_yield = (fun task ~cpu -> checked "task_yield" (fun () -> task_yield t task ~cpu) ());
    task_preempt =
      (fun task ~cpu -> checked "task_preempt" (fun () -> task_preempt t task ~cpu) ());
    task_dead = (fun task ~cpu -> checked "task_dead" (fun () -> task_dead t task ~cpu) ());
    task_departed =
      (fun task ~cpu -> checked "task_departed" (fun () -> task_departed t task ~cpu) ());
    task_tick = (fun ~cpu ~queued -> checked "tick" (fun () -> task_tick t ~cpu ~queued) ());
    pick_next_task = (fun ~cpu -> checked "pick" (fun () -> pick_next_task t ~cpu) ());
    balance = (fun ~cpu -> balance t ~cpu);
    balance_err = (fun _ ~cpu:_ -> ());
    migrate_task_rq =
      (fun task ~from_cpu ~to_cpu ->
        checked "migrate" (fun () -> migrate_task_rq t task ~from_cpu ~to_cpu) ());
    task_prio_changed =
      (fun task -> checked "prio" (fun () -> task_prio_changed t task) ());
    task_affinity_changed = (fun _ -> ());
    deliver_hint = (fun _ _ -> ());
  }
