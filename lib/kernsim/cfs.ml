type params = {
  sched_latency : Time.ns;
  min_granularity : Time.ns;
  wakeup_granularity : Time.ns;
  numa_imbalance_threshold : int;
}

let default_params =
  {
    sched_latency = Time.us 6_000;
    min_granularity = Time.us 750;
    wakeup_granularity = Time.ms 1;
    numa_imbalance_threshold = 2;
  }

(* Linux's sched_prio_to_weight: weight for nice -20 .. 19. *)
let prio_to_weight =
  [|
    88761; 71755; 56483; 46273; 36291;
    29154; 23254; 18705; 14949; 11916;
    9548; 7620; 6100; 4904; 3906;
    3121; 2501; 1991; 1586; 1277;
    1024; 820; 655; 526; 423;
    335; 272; 215; 172; 137;
    110; 87; 70; 56; 45;
    36; 29; 23; 18; 15;
  |]

let nice_0_load = 1024

let weight_of_nice nice =
  let nice = max (-20) (min 19 nice) in
  prio_to_weight.(nice + 20)

(* Per-cpu run-queue: an inline binary min-heap of pids ordered by
   (vruntime, pid).  The pid tiebreak keeps equal vruntimes deterministic
   and makes the order total, so the heap minimum coincides with the old
   red-black tree's min binding.  [curr] is -1 when no CFS task is
   dispatched on the cpu. *)
type cfs_rq = {
  mutable heap : int array;
  mutable hlen : int;
  mutable min_vruntime : int;
  mutable load_waiting : int; (* sum of weights in the heap *)
  mutable curr : int; (* pid of the dispatched CFS task, -1 = none *)
}

(* Scheduling state lives in parallel pid-indexed int arrays rather than a
   record per task: machine pids are handed out contiguously, so every
   entity access on the pick/tick/dequeue hot paths is a bounds check plus
   an unboxed array load, and adopting a task allocates nothing. *)
type t = {
  ops : Sched_class.kernel_ops;
  params : params;
  rqs : cfs_rq array;
  (* waiting tasks across every rq: lets [balance] prove "nothing to pull
     anywhere" in O(1) instead of walking the topology's cpu lists on every
     schedule operation (pullable is 0 wherever nr_waiting is 0) *)
  mutable nr_waiting_total : int;
  mutable present : bool array; (* pid adopted by this class *)
  mutable vruntime : int array;
  mutable weight : int array;
  mutable pos : int array; (* pid -> index in its rq's heap, -1 = not queued *)
  mutable rq_cpu : int array;
  mutable last_sum_exec : int array; (* checkpoint for vruntime deltas *)
  mutable slice_start_exec : int array; (* sum_exec when last dispatched *)
  mutable tasks : Task.t option array; (* pid -> task_struct view *)
}

let has_ent t pid = pid >= 0 && pid < Array.length t.present && t.present.(pid)

let find_ctask t pid =
  if pid >= 0 && pid < Array.length t.tasks then Array.unsafe_get t.tasks pid else None

let ensure_cap t pid =
  if pid >= Array.length t.present then begin
    let n = max (pid + 1) (2 * Array.length t.present) in
    let grow src fill =
      let dst = Array.make n fill in
      Array.blit src 0 dst 0 (Array.length src);
      dst
    in
    t.present <- grow t.present false;
    t.vruntime <- grow t.vruntime 0;
    t.weight <- grow t.weight 0;
    t.pos <- grow t.pos (-1);
    t.rq_cpu <- grow t.rq_cpu 0;
    t.last_sum_exec <- grow t.last_sum_exec 0;
    t.slice_start_exec <- grow t.slice_start_exec 0;
    t.tasks <- grow t.tasks None
  end

let ensure_ent t (task : Task.t) =
  ensure_cap t task.pid;
  if not t.present.(task.pid) then begin
    let pid = task.pid in
    t.present.(pid) <- true;
    t.vruntime.(pid) <- 0;
    t.weight.(pid) <- weight_of_nice task.nice;
    t.pos.(pid) <- -1;
    t.rq_cpu.(pid) <- 0;
    t.last_sum_exec.(pid) <- 0;
    t.slice_start_exec.(pid) <- 0;
    t.tasks.(pid) <- Some task
  end

(* ---------- heap primitives ---------- *)

(* strict (vruntime, pid) order; pids are unique so this is total *)
let ent_lt t p q =
  let vp = t.vruntime.(p) and vq = t.vruntime.(q) in
  vp < vq || (vp = vq && p < q)

let rec sift_up t rq i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let pi = rq.heap.(i) and pp = rq.heap.(parent) in
    if ent_lt t pi pp then begin
      rq.heap.(i) <- pp;
      rq.heap.(parent) <- pi;
      t.pos.(pp) <- i;
      t.pos.(pi) <- parent;
      sift_up t rq parent
    end
  end

let rec sift_down t rq i =
  let l = (2 * i) + 1 in
  if l < rq.hlen then begin
    let r = l + 1 in
    let m = if r < rq.hlen && ent_lt t rq.heap.(r) rq.heap.(l) then r else l in
    if ent_lt t rq.heap.(m) rq.heap.(i) then begin
      let a = rq.heap.(i) and b = rq.heap.(m) in
      rq.heap.(i) <- b;
      rq.heap.(m) <- a;
      t.pos.(b) <- i;
      t.pos.(a) <- m;
      sift_down t rq m
    end
  end

let rq_insert t rq pid =
  if rq.hlen = Array.length rq.heap then begin
    let bigger = Array.make (2 * max 4 rq.hlen) (-1) in
    Array.blit rq.heap 0 bigger 0 rq.hlen;
    rq.heap <- bigger
  end;
  rq.heap.(rq.hlen) <- pid;
  t.pos.(pid) <- rq.hlen;
  rq.hlen <- rq.hlen + 1;
  rq.load_waiting <- rq.load_waiting + t.weight.(pid);
  t.nr_waiting_total <- t.nr_waiting_total + 1;
  sift_up t rq (rq.hlen - 1)

(* no-op when the pid is not queued, like the old on_rq-guarded removal *)
let rq_remove t rq pid =
  let i = t.pos.(pid) in
  if i >= 0 then begin
    rq.load_waiting <- rq.load_waiting - t.weight.(pid);
    t.nr_waiting_total <- t.nr_waiting_total - 1;
    t.pos.(pid) <- -1;
    let last = rq.hlen - 1 in
    rq.hlen <- last;
    if i <> last then begin
      let moved = rq.heap.(last) in
      rq.heap.(i) <- moved;
      t.pos.(moved) <- i;
      sift_up t rq i;
      if t.pos.(moved) = i then sift_down t rq i
    end
  end

(* ---------- accounting ---------- *)

let curr_weight t rq = if rq.curr >= 0 && has_ent t rq.curr then t.weight.(rq.curr) else 0

let nr_waiting rq = rq.hlen

let nr_running rq = rq.hlen + if rq.curr < 0 then 0 else 1

let rq_load t rq = rq.load_waiting + curr_weight t rq

(* vruntime advances inversely to weight. *)
let calc_delta_fair delta weight = delta * nice_0_load / max 1 weight

let update_min_vruntime t rq =
  let candidate =
    if rq.hlen > 0 then begin
      let v = t.vruntime.(rq.heap.(0)) in
      if rq.curr >= 0 && has_ent t rq.curr then min v t.vruntime.(rq.curr) else v
    end
    else if rq.curr >= 0 && has_ent t rq.curr then t.vruntime.(rq.curr)
    else rq.min_vruntime
  in
  if candidate > rq.min_vruntime then rq.min_vruntime <- candidate

(* Fold freshly consumed cpu time (tracked by the kernel in sum_exec) into
   the entity's vruntime.  Only ever called on the descheduling/running
   task, which pick removed from the heap — vruntime is never mutated while
   the pid is queued, the same discipline the tree's immutable keys forced. *)
let update_curr t rq (task : Task.t) =
  ensure_ent t task;
  let pid = task.pid in
  let delta = task.sum_exec - t.last_sum_exec.(pid) in
  if delta > 0 then begin
    t.last_sum_exec.(pid) <- task.sum_exec;
    t.vruntime.(pid) <- t.vruntime.(pid) + calc_delta_fair delta t.weight.(pid);
    update_min_vruntime t rq
  end

(* CFS slice: the share of one latency period this entity is owed. *)
let sched_slice t rq pid =
  let nr = max 1 (nr_running rq) in
  let period =
    if nr > t.params.sched_latency / t.params.min_granularity then
      nr * t.params.min_granularity
    else t.params.sched_latency
  in
  let load = max 1 (rq_load t rq) in
  max t.params.min_granularity (period * t.weight.(pid) / load)

let place_entity t rq pid ~newly_woken =
  let floor_v =
    if newly_woken then
      rq.min_vruntime - calc_delta_fair (t.params.sched_latency / 2) t.weight.(pid)
    else rq.min_vruntime
  in
  if t.vruntime.(pid) < floor_v then t.vruntime.(pid) <- floor_v;
  (* also bound the deficit: queues whose min_vruntime raced ahead (e.g.
     under a lone low-weight task) must not exile this entity for seconds *)
  let ceiling = rq.min_vruntime + t.params.sched_latency in
  if t.vruntime.(pid) > ceiling then t.vruntime.(pid) <- ceiling

(* ---------- placement ---------- *)

let allowed (task : Task.t) cpu = Task.allowed_cpu task cpu

let rec find_idle_in t (task : Task.t) cpus =
  match cpus with
  | [] -> -1
  | c :: tl ->
    if allowed task c && t.ops.cpu_is_idle c && t.rqs.(c).curr < 0 && t.rqs.(c).hlen = 0
    then c
    else find_idle_in t task tl

(* weight-based, like find_idlest_cpu: a cpu running only nice-19 batch
   work is much less loaded than one stacked with high-priority tasks *)
let least_loaded t (task : Task.t) =
  let best_c = ref (-1) in
  let best_l = ref max_int in
  for c = 0 to t.ops.nr_cpus - 1 do
    if allowed task c then begin
      let load = rq_load t t.rqs.(c) in
      if !best_c < 0 || load < !best_l then begin
        best_c := c;
        best_l := load
      end
    end
  done;
  if !best_c >= 0 then !best_c else task.cpu

let select_task_rq t (task : Task.t) ~waker_cpu =
  let prev = task.cpu in
  let topo = t.ops.topology in
  if allowed task prev && t.ops.cpu_is_idle prev && nr_waiting t.rqs.(prev) = 0 then prev
  else begin
    let c = find_idle_in t task (Topology.llc_cpus topo prev) in
    if c >= 0 then c
    else begin
      let c = find_idle_in t task (Topology.node_cpus topo prev) in
      if c >= 0 then c
      else begin
        (* consider the waker's side of the machine before a full scan *)
        let c = find_idle_in t task (Topology.node_cpus topo waker_cpu) in
        if c >= 0 then c
        else begin
          let c = find_idle_in t task (Topology.all_cpus topo) in
          if c >= 0 then c else least_loaded t task
        end
      end
    end
  end

(* ---------- balancing ---------- *)

(* A pullable waiting task on [from]'s heap, preferring the one that would
   run last (largest (vruntime, pid)), that may run on [to_cpu].  The heap
   is scanned out of order; taking the maximum key reproduces exactly the
   keep-last fold over the old tree's in-order iteration. *)
let steal_candidate t ~from ~to_cpu =
  let rq = t.rqs.(from) in
  let best = ref (-1) in
  for i = 0 to rq.hlen - 1 do
    let pid = rq.heap.(i) in
    match find_ctask t pid with
    | Some task when allowed task to_cpu -> if !best < 0 || ent_lt t !best pid then best := pid
    | Some _ | None -> ()
  done;
  !best

(* Only run-queues that cannot drain themselves promptly are eligible
   sources: something running plus waiters, or several waiters.  An idle
   cpu with one just-woken task is about to run it — pulling would just
   migrate cache-hot work (real CFS's migration-cost hysteresis). *)
let pullable t c =
  let rq = t.rqs.(c) in
  let w = nr_waiting rq in
  if rq.curr >= 0 then w else if w >= 2 then w else 0

(* First maximum wins, matching the old fold; toplevel recursion so the
   per-schedule balance scan allocates nothing at all (callers recompute
   [pullable] from the returned cpu instead of receiving a tuple). *)
let rec busiest_from t ~excluding cs best_c best_w =
  match cs with
  | [] -> if best_w > 0 then best_c else -1
  | c :: tl ->
    if c <> excluding then begin
      let w = pullable t c in
      if w > best_w then busiest_from t ~excluding tl c w
      else busiest_from t ~excluding tl best_c best_w
    end
    else busiest_from t ~excluding tl best_c best_w

let busiest_cpu t ~among ~excluding = busiest_from t ~excluding among (-1) 0

(* [pullable src] is pure, so recomputing it here sees exactly the value
   the busiest scan compared.  Toplevel, not closures inside [balance]:
   balance runs on every schedule operation and must not allocate. *)
let try_pull t src ~to_cpu ~here ~threshold =
  if src >= 0 && pullable t src >= here + threshold then
    steal_candidate t ~from:src ~to_cpu
  else -1

let remote_pull t ~cpu ~here =
  try_pull t
    (busiest_cpu t ~among:(Topology.all_cpus t.ops.topology) ~excluding:cpu)
    ~to_cpu:cpu ~here ~threshold:t.params.numa_imbalance_threshold

let balance_scan t ~cpu rq =
  let topo = t.ops.topology in
  let here = nr_running rq in
  let local = busiest_cpu t ~among:(Topology.node_cpus topo cpu) ~excluding:cpu in
  if local >= 0 then begin
    (* newidle: pull whenever someone local is waiting and we are idle;
       periodic: pull only past an imbalance of 2 *)
    let threshold = if here = 0 then 1 else 2 in
    let pid = try_pull t local ~to_cpu:cpu ~here ~threshold in
    if pid >= 0 then pid else if here = 0 then remote_pull t ~cpu ~here else -1
  end
  else if here = 0 then remote_pull t ~cpu ~here
  else -1

let balance t ~cpu =
  let rq = t.rqs.(cpu) in
  (* no waiter anywhere but here => pullable is 0 on every other cpu and
     both busiest scans would come back empty; prove it in O(1) *)
  if t.nr_waiting_total - rq.hlen = 0 then -1 else balance_scan t ~cpu rq

(* ---------- hooks ---------- *)

let task_new t (task : Task.t) ~cpu =
  ensure_ent t task;
  let pid = task.pid in
  t.weight.(pid) <- weight_of_nice task.nice;
  t.rq_cpu.(pid) <- cpu;
  let rq = t.rqs.(cpu) in
  t.vruntime.(pid) <- rq.min_vruntime;
  t.last_sum_exec.(pid) <- task.sum_exec;
  rq_insert t rq pid

let task_wakeup t (task : Task.t) ~cpu ~waker_cpu =
  ignore waker_cpu;
  ensure_ent t task;
  let pid = task.pid in
  let rq = t.rqs.(cpu) in
  t.rq_cpu.(pid) <- cpu;
  place_entity t rq pid ~newly_woken:true;
  rq_insert t rq pid;
  (* wakeup preemption: granularity scales with the woken entity's weight,
     as in wakeup_gran() — heavy (high-priority) wakers preempt sooner *)
  if rq.curr >= 0 && has_ent t rq.curr then begin
    let gran = calc_delta_fair t.params.wakeup_granularity t.weight.(pid) in
    if t.vruntime.(pid) + gran < t.vruntime.(rq.curr) then t.ops.resched_cpu cpu
  end

let dequeue_running t (task : Task.t) ~cpu =
  let rq = t.rqs.(cpu) in
  update_curr t rq task;
  if rq.curr = task.pid then rq.curr <- -1 else rq_remove t rq task.pid

let task_blocked t (task : Task.t) ~cpu = dequeue_running t task ~cpu

let forget t pid =
  t.present.(pid) <- false;
  t.tasks.(pid) <- None

let task_dead t (task : Task.t) ~cpu =
  dequeue_running t task ~cpu;
  forget t task.pid

let task_departed t (task : Task.t) ~cpu =
  if has_ent t task.pid then begin
    (if Task.is_runnable task then dequeue_running t task ~cpu);
    forget t task.pid
  end

let requeue_preempted t (task : Task.t) ~cpu =
  let rq = t.rqs.(cpu) in
  update_curr t rq task;
  let pid = task.pid in
  if rq.curr = pid then rq.curr <- -1;
  if t.pos.(pid) < 0 then begin
    t.rq_cpu.(pid) <- cpu;
    rq_insert t rq pid
  end

let task_preempt t (task : Task.t) ~cpu = requeue_preempted t task ~cpu

let task_yield t (task : Task.t) ~cpu = requeue_preempted t task ~cpu

let pick_next_task t ~cpu =
  let rq = t.rqs.(cpu) in
  if rq.hlen = 0 then -1
  else begin
    let pid = rq.heap.(0) in
    if not (has_ent t pid) then -1
    else begin
      rq_remove t rq pid;
      rq.curr <- pid;
      (match find_ctask t pid with
      | Some task ->
        t.last_sum_exec.(pid) <- task.sum_exec;
        t.slice_start_exec.(pid) <- task.sum_exec
      | None -> ());
      pid
    end
  end

let task_tick t ~cpu ~queued =
  ignore queued;
  let rq = t.rqs.(cpu) in
  (if rq.curr >= 0 then begin
     let pid = rq.curr in
     match find_ctask t pid with
     | Some task when has_ent t pid ->
       update_curr t rq task;
       if nr_waiting rq > 0 then begin
         let ran = task.sum_exec - t.slice_start_exec.(pid) in
         if ran >= sched_slice t rq pid then t.ops.resched_cpu cpu
       end
     | Some _ | None -> ()
   end);
  (* periodic balancing: a busy cpu observing a big enough imbalance asks
     itself to reschedule, which runs the balance hook *)
  if rq.curr >= 0 && t.nr_waiting_total - rq.hlen > 0 then begin
    let here = nr_running rq in
    let topo = t.ops.topology in
    let b = busiest_cpu t ~among:(Topology.node_cpus topo cpu) ~excluding:cpu in
    if b >= 0 && pullable t b >= here + 2 then t.ops.resched_cpu cpu
  end

let migrate_task_rq t (task : Task.t) ~from_cpu ~to_cpu =
  ensure_ent t task;
  let pid = task.pid in
  let from_rq = t.rqs.(from_cpu) and to_rq = t.rqs.(to_cpu) in
  if from_rq.curr = pid then from_rq.curr <- -1;
  rq_remove t from_rq pid;
  (* renormalize vruntime relative to the destination queue, carrying at
     most one latency period of credit or debt: min_vruntime diverges wildly
     between queues dominated by different weights, and letting the raw
     offset travel can exile a task behind a low-weight hog for seconds *)
  let cap = t.params.sched_latency in
  let offset = max (-cap) (min cap (t.vruntime.(pid) - from_rq.min_vruntime)) in
  t.vruntime.(pid) <- to_rq.min_vruntime + offset;
  t.rq_cpu.(pid) <- to_cpu;
  if Task.is_runnable task && task.state <> Task.Running then rq_insert t to_rq pid

let task_prio_changed t (task : Task.t) =
  ensure_ent t task;
  let pid = task.pid in
  if t.pos.(pid) >= 0 then begin
    let rq = t.rqs.(t.rq_cpu.(pid)) in
    rq_remove t rq pid;
    t.weight.(pid) <- weight_of_nice task.nice;
    rq_insert t rq pid
  end
  else t.weight.(pid) <- weight_of_nice task.nice

(* Internal consistency check used by tests and while debugging: every
   runnable, non-running task must sit in exactly the heap of its run-queue
   at its recorded position, and each heap must satisfy the (vruntime, pid)
   min-heap order. *)
let check_consistency t ~hook =
  let total = Array.fold_left (fun acc rq -> acc + rq.hlen) 0 t.rqs in
  if total <> t.nr_waiting_total then
    failwith
      (Printf.sprintf "cfs[%s]: nr_waiting_total=%d but heaps hold %d" hook
         t.nr_waiting_total total);
  Array.iteri
    (fun cpu rq ->
      for i = 0 to rq.hlen - 1 do
        let pid = rq.heap.(i) in
        if t.pos.(pid) <> i then
          failwith
            (Printf.sprintf "cfs[%s]: cpu %d heap slot %d holds pid %d but pos=%d" hook cpu
               i pid t.pos.(pid));
        if i > 0 then begin
          let parent = rq.heap.((i - 1) / 2) in
          if ent_lt t pid parent then
            failwith
              (Printf.sprintf "cfs[%s]: cpu %d heap order violated at slot %d (pid %d)"
                 hook cpu i pid)
        end
      done)
    t.rqs;
  let iter_tasks f =
    Array.iteri (fun pid task -> match task with Some task -> f pid task | None -> ()) t.tasks
  in
  iter_tasks
    (fun pid (task : Task.t) ->
      if has_ent t pid then begin
        let in_heap rq =
          let i = t.pos.(pid) in
          i >= 0 && i < rq.hlen && rq.heap.(i) = pid
        in
        let is_curr = Array.exists (fun rq -> rq.curr = pid) t.rqs in
        if task.state = Task.Runnable && not is_curr then begin
          if t.pos.(pid) < 0 then
            failwith
              (Printf.sprintf "cfs[%s]: runnable pid %d not on_rq (task.cpu=%d)" hook pid
                 task.cpu);
          if t.rq_cpu.(pid) <> task.cpu then
            failwith
              (Printf.sprintf "cfs[%s]: pid %d heap cpu %d but kernel cpu %d" hook pid
                 t.rq_cpu.(pid) task.cpu);
          if not (in_heap t.rqs.(t.rq_cpu.(pid))) then
            failwith
              (Printf.sprintf "cfs[%s]: pid %d (v=%d) missing from heap on cpu %d" hook pid
                 t.vruntime.(pid) t.rq_cpu.(pid))
        end
      end);
  (* a task the kernel is running must be this class's curr on its cpu *)
  iter_tasks
    (fun pid (task : Task.t) ->
      if task.state = Task.Running && has_ent t pid then
        let c = t.rqs.(task.cpu).curr in
        if c <> pid then
          failwith
            (Printf.sprintf "cfs[%s]: pid %d running on cpu %d but rq.curr=%s" hook pid
               task.cpu
               (if c >= 0 then string_of_int c else "none")))

let factory ?(params = default_params) ?(debug_checks = false) () : Sched_class.factory =
 fun ops ->
  let t =
    {
      ops;
      params;
      nr_waiting_total = 0;
      rqs =
        Array.init ops.nr_cpus (fun _ ->
            {
              heap = Array.make 8 (-1);
              hlen = 0;
              min_vruntime = 0;
              load_waiting = 0;
              curr = -1;
            });
      present = Array.make 64 false;
      vruntime = Array.make 64 0;
      weight = Array.make 64 0;
      pos = Array.make 64 (-1);
      rq_cpu = Array.make 64 0;
      last_sum_exec = Array.make 64 0;
      slice_start_exec = Array.make 64 0;
      tasks = Array.make 64 None;
    }
  in
  (* Conditional post-check, not a closure-wrapping combinator: the hooks
     are the event hot path and must not allocate a thunk per call just to
     carry a disabled debug check. *)
  let chk hook = if debug_checks then check_consistency t ~hook in
  {
    Sched_class.name = "cfs";
    select_task_rq = (fun task ~waker_cpu -> select_task_rq t task ~waker_cpu);
    task_new =
      (fun task ~cpu ->
        task_new t task ~cpu;
        chk "task_new");
    task_wakeup =
      (fun task ~cpu ~waker_cpu ->
        task_wakeup t task ~cpu ~waker_cpu;
        chk "task_wakeup");
    task_blocked =
      (fun task ~cpu ->
        task_blocked t task ~cpu;
        chk "task_blocked");
    task_yield =
      (fun task ~cpu ->
        task_yield t task ~cpu;
        chk "task_yield");
    task_preempt =
      (fun task ~cpu ->
        task_preempt t task ~cpu;
        chk "task_preempt");
    task_dead =
      (fun task ~cpu ->
        task_dead t task ~cpu;
        chk "task_dead");
    task_departed =
      (fun task ~cpu ->
        task_departed t task ~cpu;
        chk "task_departed");
    task_tick =
      (fun ~cpu ~queued ->
        task_tick t ~cpu ~queued;
        chk "tick");
    pick_next_task =
      (fun ~cpu ->
        let pid = pick_next_task t ~cpu in
        chk "pick";
        pid);
    balance = (fun ~cpu -> balance t ~cpu);
    balance_err = (fun _ ~cpu:_ -> ());
    migrate_task_rq =
      (fun task ~from_cpu ~to_cpu ->
        migrate_task_rq t task ~from_cpu ~to_cpu;
        chk "migrate");
    task_prio_changed =
      (fun task ->
        task_prio_changed t task;
        chk "prio");
    task_affinity_changed = (fun _ -> ());
    deliver_hint = (fun _ _ -> ());
  }
