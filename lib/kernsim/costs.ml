type t = {
  context_switch : Time.ns;
  wakeup_path : Time.ns;
  syscall : Time.ns;
  ipi_latency : Time.ns;
  idle_exit : Time.ns;
  deep_idle_exit : Time.ns;
  deep_idle_after : Time.ns;
  migration : Time.ns;
  tick_period : Time.ns;
  timer_arm : Time.ns;
  enoki_call : Time.ns;
  ghost_agent_local : Time.ns;
  ghost_agent_burn : Time.ns;
  ghost_agent_remote : Time.ns;
  ghost_msg : Time.ns;
  record_msg : Time.ns;
  upgrade_base : Time.ns;
  upgrade_per_cpu : Time.ns;
  upgrade_per_task : Time.ns;
  failover : Time.ns;
}

let default =
  {
    context_switch = 900;
    wakeup_path = 450;
    syscall = 350;
    ipi_latency = 350;
    idle_exit = 1_150;
    deep_idle_exit = 30_000;
    deep_idle_after = 150_000;
    migration = 600;
    tick_period = Time.ms 1;
    timer_arm = 100;
    enoki_call = 125;
    ghost_agent_local = 3_600;
    ghost_agent_burn = 800;
    ghost_agent_remote = 1_100;
    ghost_msg = 250;
    record_msg = 5_200;
    upgrade_base = 550;
    upgrade_per_cpu = 117;
    upgrade_per_task = 3;
    failover = 1_500;
  }

let with_record t = { t with record_msg = (if t.record_msg = 0 then 3_800 else t.record_msg) }
