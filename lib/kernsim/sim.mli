(** The discrete-event engine: a virtual clock and an ordered queue of
    callbacks.

    Events at equal timestamps fire in scheduling order (a monotonically
    increasing sequence number breaks ties), which makes whole simulations
    deterministic.

    Two interchangeable queue backends exist: the default hierarchical
    {!Ds.Timer_wheel} (O(1) insert/pop/cancel near the cursor, pooled
    nodes) and the original binary heap, kept as the semantic reference —
    both dispatch the exact same event stream for the same calls (see
    [test_core_equiv]). *)

type t

type backend = [ `Heap | `Wheel ]

(** [create ()] uses the timer-wheel backend; pass [~backend:`Heap] for
    the reference heap. *)
val create : ?backend:backend -> unit -> t

val backend : t -> backend

val now : t -> Time.ns

(** [at t ~time f] schedules [f] to run when the clock reaches [time]
    (clamped to [now] if in the past). *)
val at : t -> time:Time.ns -> (unit -> unit) -> unit

(** [after t ~delay f] is [at t ~time:(now t + delay) f].
    @raise Invalid_argument if [delay] is negative (a negative delay is a
    cost-model bug; clamping would silently reorder same-tick events).
    Zero is legal. *)
val after : t -> delay:Time.ns -> (unit -> unit) -> unit

(** A reusable cancellable event cell.  One allocation at {!timer} time;
    re-arming and firing are allocation-free on the wheel backend, and
    {!cancel} actually removes the event instead of leaving a tombstone
    to be dead-dispatched. *)
type timer

(** [timer t f] makes a detached timer that runs [f] when it fires.
    The cell is tied to [t]'s backend. *)
val timer : t -> (unit -> unit) -> timer

(** Arm (or re-arm, replacing the previous arm) at an absolute time,
    clamped to [now].  Each arm takes a fresh tie-break sequence number,
    exactly as a fresh {!at} would. *)
val arm_at : t -> timer -> time:Time.ns -> unit

(** [arm_after t tm ~delay] is [arm_at t tm ~time:(now t + delay)].
    @raise Invalid_argument if [delay] is negative, as {!after}. *)
val arm_after : t -> timer -> delay:Time.ns -> unit

(** Disarm; no-op when not armed. *)
val cancel : t -> timer -> unit

(** True while armed and not yet fired. *)
val timer_pending : timer -> bool

(** Run events until the clock passes [until] or the queue empties.
    Events scheduled exactly at [until] are executed. *)
val run_until : t -> until:Time.ns -> unit

(** Run until the event queue is empty. *)
val run : t -> unit

val pending : t -> int

(** Number of events dispatched so far — the denominator for events/sec
    and bytes/event in [bench speed]. *)
val dispatched : t -> int
