type backend = [ `Heap | `Wheel ]

(* Heap-backend event.  [hpos] is maintained by the heap's [on_move] hook
   so armed timers can be cancelled in O(log n) instead of tombstoned. *)
type event = {
  mutable time : Time.ns;
  mutable seq : int;
  mutable thunk : unit -> unit;
  mutable hpos : int;
}

type impl =
  | W of (unit -> unit) Ds.Timer_wheel.t
  | H of event Ds.Heap.t

type t = {
  impl : impl;
  mutable clock : Time.ns;
  mutable next_seq : int;
  mutable dispatched : int;
}

type timer =
  | TW of (unit -> unit) Ds.Timer_wheel.timer
  | TH of th

and th = { th_ev : event; mutable th_armed : bool }

let compare_event a b =
  match Int.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let nothing () = ()

let create ?(backend = `Wheel) () =
  let impl =
    match backend with
    | `Wheel -> W (Ds.Timer_wheel.create ~dummy:nothing ())
    | `Heap -> H (Ds.Heap.create ~on_move:(fun e i -> e.hpos <- i) ~compare:compare_event ())
  in
  { impl; clock = 0; next_seq = 0; dispatched = 0 }

let backend t = match t.impl with W _ -> `Wheel | H _ -> `Heap

let now t = t.clock

let dispatched t = t.dispatched

let next_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let at t ~time f =
  let time = max time t.clock in
  let seq = next_seq t in
  match t.impl with
  | W w -> Ds.Timer_wheel.add w ~time ~seq f
  | H h -> Ds.Heap.add h { time; seq; thunk = f; hpos = -1 }

(* A negative delay is always a caller bug (typically a broken cost
   model); clamping it to 0 would silently reorder same-tick events and
   mask the bug, so fail loudly instead.  Zero stays legal. *)
let after t ~delay f =
  if delay < 0 then invalid_arg "Sim.after: negative delay";
  at t ~time:(t.clock + delay) f

let timer t f =
  match t.impl with
  | W w -> TW (Ds.Timer_wheel.make_timer w f)
  | H _ ->
      let rec th =
        { th_ev =
            { time = 0; seq = 0;
              thunk = (fun () -> th.th_armed <- false; f ());
              hpos = -1 };
          th_armed = false }
      in
      TH th

let arm_at t tm ~time =
  let time = max time t.clock in
  let seq = next_seq t in
  match t.impl, tm with
  | W w, TW n -> Ds.Timer_wheel.arm w n ~time ~seq
  | H h, TH th ->
      if th.th_armed then ignore (Ds.Heap.remove_at h th.th_ev.hpos);
      th.th_ev.time <- time;
      th.th_ev.seq <- seq;
      th.th_armed <- true;
      Ds.Heap.add h th.th_ev
  | _ -> invalid_arg "Sim.arm_at: timer from another backend"

let arm_after t tm ~delay =
  if delay < 0 then invalid_arg "Sim.arm_after: negative delay";
  arm_at t tm ~time:(t.clock + delay)

let cancel t tm =
  match t.impl, tm with
  | W w, TW n -> Ds.Timer_wheel.cancel w n
  | H h, TH th ->
      if th.th_armed then begin
        ignore (Ds.Heap.remove_at h th.th_ev.hpos);
        th.th_armed <- false
      end
  | _ -> invalid_arg "Sim.cancel: timer from another backend"

let timer_pending = function
  | TW n -> Ds.Timer_wheel.pending n
  | TH th -> th.th_armed

(* The dispatch loops are toplevel recursive functions, not local
   closures: locals capturing [t]/[until] would allocate per call. *)
let run_thunk g = g ()

(* Wheel backend: batched expiry.  [next_before] lands the minimum on a
   ready level-0 slot whose events all share one exact time, and
   [drain_ready] then dispatches the whole slot — including same-time
   events armed by the callbacks themselves — with the slot scan and
   cache bookkeeping paid once per slot instead of once per event.
   Dispatch order is identical to a pop-per-event loop: anything a
   callback schedules is at a time >= the clock, and equal-time inserts
   carry later seqs, so they belong at the slot tail the drain is already
   walking. *)
let rec run_wheel t w until =
  let tn = Ds.Timer_wheel.next_before w ~until in
  if tn <> max_int then begin
    t.clock <- tn;
    t.dispatched <- t.dispatched + Ds.Timer_wheel.drain_ready w run_thunk;
    run_wheel t w until
  end
  else if t.clock < until then t.clock <- until

let rec run_heap t h until =
  match Ds.Heap.peek h with
  | Some ev when ev.time <= until ->
      ignore (Ds.Heap.pop h);
      t.clock <- ev.time;
      t.dispatched <- t.dispatched + 1;
      ev.thunk ();
      run_heap t h until
  | Some _ | None -> if t.clock < until then t.clock <- until

let run_until t ~until =
  match t.impl with
  | W w -> run_wheel t w until
  | H h -> run_heap t h until

let rec run_wheel_all t w =
  if not (Ds.Timer_wheel.is_empty w) then begin
    t.clock <- Ds.Timer_wheel.next_time w;
    t.dispatched <- t.dispatched + Ds.Timer_wheel.drain_ready w run_thunk;
    run_wheel_all t w
  end

let rec run_heap_all t h =
  match Ds.Heap.pop h with
  | Some ev ->
      t.clock <- ev.time;
      t.dispatched <- t.dispatched + 1;
      ev.thunk ();
      run_heap_all t h
  | None -> ()

let run t =
  match t.impl with
  | W w -> run_wheel_all t w
  | H h -> run_heap_all t h

let pending t =
  match t.impl with
  | W w -> Ds.Timer_wheel.length w
  | H h -> Ds.Heap.length h
