(** Simulated tasks and their behaviours.

    A task is the simulator's [task_struct]: identity, scheduling state and
    accounting, plus a {e behaviour} — a resumable program that yields the
    task's next action whenever the previous one completes.  Behaviours are
    closures carrying their own state, which is how the workload generators
    ({!Workloads}) express pipes, servers, fork-join phases and so on. *)

type ns = Time.ns

(** Messages crossing the user/kernel boundary (Enoki's custom scheduler
    hints, §3.3).  The variant is extensible: each scheduler defines its own
    hint constructors, mirroring the paper's scheduler-defined hint types. *)
type hint = ..

(** What a task does next.  Instantaneous actions ([Wake], [Send_hint],
    [Spawn]) are processed in the task's kernel context and the behaviour is
    immediately asked for another action. *)
type action =
  | Compute of ns  (** run on the cpu for this much time *)
  | Block of int  (** wait on channel (semantics of a semaphore P) *)
  | Wake of int  (** signal channel (semaphore V), waking one waiter *)
  | Sleep of ns  (** block for a fixed duration *)
  | Yield  (** give up the cpu but stay runnable *)
  | Send_hint of hint  (** push a hint to this task's scheduler *)
  | Spawn of spec  (** create a new task *)
  | Exit  (** terminate *)

and ctx = {
  mutable now : ns;
  mutable self : int;  (** own pid *)
  mutable cpu : int;  (** cpu the task is currently on *)
  mutable inbox : hint list;  (** kernel-to-user messages since the last action *)
}
(** The fields are mutable because the machine reuses {e one} scratch
    [ctx] record for every behaviour step (the record would otherwise be
    a per-event allocation on the hottest path).  The value is only valid
    for the duration of the behaviour call: behaviours must read what
    they need immediately and never retain the record itself. *)

and behaviour = ctx -> action

and spec = {
  name : string;
  group : string;  (** accounting group, e.g. "batch" vs "rocksdb" *)
  nice : int;  (** -20 (highest) .. 19 (lowest) *)
  policy : int;  (** which scheduler class manages this task *)
  behaviour : behaviour;
  affinity : int list option;  (** allowed cpus; [None] = all *)
}

type state = Runnable | Running | Blocked | Dead

type t = {
  pid : int;
  name : string;
  group : string;
  mutable nice : int;
  mutable policy : int;
  behaviour : behaviour;
  mutable state : state;
  mutable cpu : int;  (** kernel run-queue assignment *)
  mutable affinity : int list option;
  mutable remaining : ns;  (** left of the current [Compute] *)
  mutable sum_exec : ns;  (** total cpu time consumed *)
  mutable last_wake : ns;
  mutable wake_pending : bool;  (** a wakeup latency sample is outstanding *)
  mutable migrations : int;  (** lifetime cross-cpu moves (includes affinity fixups) *)
  mutable inbox : hint list;  (** kernel-to-user hint mailbox (newest first) *)
  mutable pending_policy : int option;
      (** policy change to apply at the next deschedule *)
  mutable spawned_at : ns;
  mutable exited_at : ns option;
}

(** [default_spec ~name behaviour] fills in group = name, nice 0, policy 0,
    no affinity. *)
val default_spec : name:string -> behaviour -> spec

val make : spec -> pid:int -> now:ns -> t

val is_runnable : t -> bool

(** [allowed_cpu task cpu] respects [affinity]. *)
val allowed_cpu : t -> int -> bool

val pp_state : Format.formatter -> state -> unit
