type policy = Round_robin | Least_outstanding | Weighted | Consistent_hash

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_outstanding -> "least-outstanding"
  | Weighted -> "weighted"
  | Consistent_hash -> "consistent-hash"

let policies = [ Round_robin; Least_outstanding; Weighted; Consistent_hash ]

let policy_names = List.map policy_name policies

let policy_of_string s =
  match List.find_opt (fun p -> policy_name p = s) policies with
  | Some p -> Ok p
  | None ->
    Error (Printf.sprintf "unknown lb policy %S (expected one of: %s)" s
             (String.concat ", " policy_names))

(* splitmix64-style finaliser truncated to OCaml's native int: good enough
   mixing for ring placement and key hashing, and fully deterministic. *)
let mix x =
  let z = ref (x lxor 0x9E37_79B9) in
  z := (!z lxor (!z lsr 30)) * 0x2545_F491_4F6C_DD1D;
  z := (!z lxor (!z lsr 27)) * 0x1B87_3593_49BB_0941;
  (!z lxor (!z lsr 31)) land max_int

let vnodes = 64

type t = {
  policy : policy;
  n : int;
  up : bool array;
  out : int array;  (* outstanding per host *)
  weights : int array;
  rng : Stats.Prng.t;  (* least-outstanding tie-breaks *)
  mutable rr : int;  (* round-robin cursor *)
  wrr : int array;  (* smooth-WRR current weights *)
  ring : (int * int) array;  (* (hash, host), sorted by hash *)
  scratch : int array;  (* tie candidates, reused to avoid allocation *)
}

let create ?weights ~policy ~hosts ~seed () =
  if hosts <= 0 then invalid_arg "Lb.create: hosts must be positive";
  let weights =
    match weights with
    | None -> Array.make hosts 1
    | Some w ->
      if Array.length w <> hosts then invalid_arg "Lb.create: weights length <> hosts";
      Array.iter (fun x -> if x <= 0 then invalid_arg "Lb.create: weights must be positive") w;
      Array.copy w
  in
  let ring =
    Array.init (hosts * vnodes) (fun i ->
        let host = i / vnodes and v = i mod vnodes in
        (mix ((host lsl 20) lor v), host))
  in
  Array.sort compare ring;
  {
    policy;
    n = hosts;
    up = Array.make hosts true;
    out = Array.make hosts 0;
    weights;
    rng = Stats.Prng.create ~seed;
    rr = hosts - 1;
    wrr = Array.make hosts 0;
    ring;
    scratch = Array.make hosts 0;
  }

let nr_hosts t = t.n

let any_up t = Array.exists Fun.id t.up

let pick_rr t =
  (* first up host clockwise of the cursor *)
  let rec go k =
    if k > t.n then None
    else
      let i = (t.rr + k) mod t.n in
      if t.up.(i) then begin
        t.rr <- i;
        Some i
      end
      else go (k + 1)
  in
  go 1

let pick_least t =
  let best = ref max_int and ties = ref 0 in
  for i = 0 to t.n - 1 do
    if t.up.(i) then
      if t.out.(i) < !best then begin
        best := t.out.(i);
        t.scratch.(0) <- i;
        ties := 1
      end
      else if t.out.(i) = !best then begin
        t.scratch.(!ties) <- i;
        incr ties
      end
  done;
  if !ties = 0 then None
  else if !ties = 1 then Some t.scratch.(0)
  else Some t.scratch.(Stats.Prng.int t.rng !ties)

let pick_weighted t =
  (* nginx smooth weighted round-robin, restricted to up hosts *)
  let total = ref 0 in
  let best = ref (-1) in
  for i = 0 to t.n - 1 do
    if t.up.(i) then begin
      t.wrr.(i) <- t.wrr.(i) + t.weights.(i);
      total := !total + t.weights.(i);
      if !best < 0 || t.wrr.(i) > t.wrr.(!best) then best := i
    end
  done;
  if !best < 0 then None
  else begin
    t.wrr.(!best) <- t.wrr.(!best) - !total;
    Some !best
  end

let pick_hash t ~key =
  if not (any_up t) then None
  else begin
    let h = mix key in
    let len = Array.length t.ring in
    (* first ring entry with hash >= h (wrapping) *)
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
    done;
    let start = if !lo = len then 0 else !lo in
    (* walk clockwise past drained owners; terminates because some host is up *)
    let rec go k =
      let _, host = t.ring.((start + k) mod len) in
      if t.up.(host) then host else go (k + 1)
    in
    Some (go 0)
  end

let pick t ~key =
  match t.policy with
  | Round_robin -> pick_rr t
  | Least_outstanding -> pick_least t
  | Weighted -> pick_weighted t
  | Consistent_hash -> pick_hash t ~key

let check t i name = if i < 0 || i >= t.n then invalid_arg ("Lb." ^ name ^ ": bad host")

let dispatch t i =
  check t i "dispatch";
  t.out.(i) <- t.out.(i) + 1

let complete t i =
  check t i "complete";
  t.out.(i) <- t.out.(i) - 1

let outstanding t i =
  check t i "outstanding";
  t.out.(i)

let drain t i =
  check t i "drain";
  t.up.(i) <- false

let admit t i =
  check t i "admit";
  t.up.(i) <- true

let drained t i =
  check t i "drained";
  not t.up.(i)
