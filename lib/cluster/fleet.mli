(** The simulated fleet: N machines behind a load balancer, driven by the
    open-loop {!Traffic} engine.

    Each host is a full {!Kernsim.Machine} built through
    {!Workloads.Setup.build} with its own scheduler (any
    {!Schedulers.Registry} entry; heterogeneous mixes are fine) and a pool
    of server tasks.  The fleet advances all hosts in lock-step {e epochs}:
    per epoch it drains the traffic engine's next arrival window, places
    every request through the balancer, injects each one into its host at
    its exact arrival time via the {!Kernsim.Machine.signal} doorbell, and
    runs every machine to the epoch boundary — one fixed interleaving, so
    a (seed, config) pair reproduces the whole fleet run bit for bit.

    The epoch is a {e conservative-lookahead barrier}: no host-to-host
    event crosses an epoch (load balancing and ingress placement happen at
    epoch edges, on the coordinating domain), so within an epoch the host
    machines are independent and may advance concurrently on a
    {!Ds.Domain_pool} ([create ?pool]).  Anything a host would write to
    fleet-shared state mid-advance (balancer completions, per-tenant
    counters, shared histograms, request anatomy, the oplog) is instead
    buffered per host with its inputs captured at emission time, and the
    buffers are replayed on the coordinating domain at the barrier in
    fixed host order, chronological within a host — exactly the sequential
    order.  Hence the hard contract the tests and `fleetgate` enforce:
    {b a fleet run is byte-identical for any pool size}, down to metric
    exports, anatomy tables, trace streams, and record-log bytes.  Each
    host also carries its own {!Enoki.Lock.ctx}, installed around every
    advance, so lock ids, record streams, and trace taps follow the host
    rather than whichever domain happens to run it.

    Orchestration rides on top:

    - {b rolling live upgrade} (§5.7 at fleet scale): staggered per-host
      {!Enoki.Enoki_c.upgrade} calls under load, with each host's upgrade
      pause recorded and completions inside the pause window attributed to
      a blackout histogram;
    - {b chaos drills} reusing [lib/fault]: a victim host's module is
      wrapped with a deterministic panic {!Fault.Plan}; the module panic
      quarantines and fails over to CFS inside the host, a
      {!Fault.Watchdog} (or the epoch poll of
      {!Enoki.Enoki_c.failover_stats}) detects it, the balancer drains the
      host, and once the host's queue runs dry it is re-admitted — the
      host panic → drain → failover → re-admit cycle. *)

type ns = Kernsim.Time.ns

(** Rolling-upgrade plan: host [i] upgrades (to its registry module, the
    §5.7 re-registration) at [at + i*stagger] on its own clock. *)
type upgrade = { at : ns; stagger : ns }

(** Chaos drill: [victim]'s module panics out of [pick_next_task] after
    [after_calls] scheduler calls; once drained, the host is re-admitted
    [recovery] ns after the drain (and only when its queue is empty). *)
type chaos = { victim : int; after_calls : int; recovery : ns }

type t

(** [create ~seed ~hosts ~tenants ()] builds the fleet.  One root [seed]
    is split (in fixed order) into the traffic, balancer and fault-plan
    streams.  [workers] server tasks per host pull requests off the host's
    ingress queue ([queue_cap] deep; overflow counts a drop); each request
    costs [dispatch_overhead] plus its own service time.  Latency
    histograms only record after [warmup].  A chaos victim must be an
    Enoki-module host.

    [anatomy] switches on the request-anatomy layer ({!Trace.Anatomy}):
    every request's end-to-end latency is decomposed into six exactly
    summing phases, aggregated per tenant/host/phase into the fleet
    registry, with the [anatomy_top] worst requests kept as exemplars.
    The switch draws no randomness and charges no simulated time, so
    anatomy on/off produces bit-identical fleet runs.  [record] attaches
    a replay-grade record log to host 0's Enoki boundary (ignored for
    non-Enoki host 0).  [observe:false] keeps every latency histogram
    cold for the whole run — the no-observability baseline the overhead
    bench compares against.

    [pool] attaches a {!Ds.Domain_pool}: each {!step} then advances the
    hosts concurrently across the pool's domains (a pool of size 1, or no
    pool, advances them in place on the same code path).  Results are
    byte-identical for any pool size; only wall clock changes.  The caller
    owns the pool's lifecycle (it may be shared between fleets, one run at
    a time) and shuts it down. *)
val create :
  ?topology:Kernsim.Topology.t ->
  ?workers:int ->
  ?queue_cap:int ->
  ?epoch:ns ->
  ?warmup:ns ->
  ?dispatch_overhead:ns ->
  ?weights:int array ->
  ?lb:Lb.policy ->
  ?upgrade:upgrade ->
  ?chaos:chaos ->
  ?anatomy:bool ->
  ?anatomy_top:int ->
  ?record:Enoki.Record.t ->
  ?observe:bool ->
  ?pool:Ds.Domain_pool.t ->
  seed:int ->
  hosts:Schedulers.Registry.entry list ->
  tenants:Traffic.tenant list ->
  unit ->
  t

(** Advance the whole fleet by one epoch (clamped to [limit]): drain the
    traffic window, place every request, run each host to the boundary,
    poll the drill state machine.  Exposed so callers can interleave
    fleet-scope work — e.g. the CLI's periodic metrics sampling — at
    epoch granularity; {!run} is a [step] loop. *)
val step : t -> limit:ns -> unit

(** Advance the whole fleet to simulated time [until]. *)
val run : t -> until:ns -> unit

(** Advance until the traffic engine has churned through [flows] complete
    flows (the bounded-memory acceptance run), or [max_time] is reached. *)
val run_flows : t -> flows:int -> max_time:ns -> unit

val clock : t -> ns

val nr_hosts : t -> int

(** The fleet-level metrics registry (per-tenant / per-host labelled
    series), for export. *)
val registry : t -> Metrics.Registry.t

(** The request-anatomy aggregator when [create ~anatomy:true] was given. *)
val anatomy : t -> Trace.Anatomy.t option

(** Total simulator events dispatched across every host machine — the
    denominator for per-event overhead accounting. *)
val events_dispatched : t -> int

val traffic : t -> Traffic.t

val lb : t -> Lb.t

(** Per-tenant results: total completions/drops/rejects and
    measured-window latency percentiles. *)
type tenant_stat = {
  tenant : string;
  completed : int;
  dropped : int;  (** host ingress-queue overflows *)
  rejected : int;  (** balancer had no host (all drained) *)
  p50 : ns;
  p99 : ns;
  p999 : ns;
}

val tenant_stats : t -> tenant_stat list

type host_stat = {
  host : int;
  sched : string;
  completed : int;
  p99 : ns;
  drained : bool;  (** currently out of rotation *)
  quarantined : bool;  (** module quarantined (failed over to CFS) *)
}

val host_stats : t -> host_stat list

(** Upgrades performed, in firing order: (host, pause ns). *)
val upgrades : t -> (int * ns) list

val upgrade_failures : t -> int

(** Completions that landed inside a host's upgrade blackout window. *)
val blackout : t -> Stats.Histogram.t

(** Fleet orchestration timeline, oldest first: (when, host, op) with op
    one of "upgrade", "drain", "admit". *)
val oplog : t -> (ns * int * string) list

(** Every drilled (drained) host was re-admitted. *)
val converged : t -> bool

(** The chaos victim's sanitizer verdict ([true] when no victim tracer). *)
val sanitizer_ok : t -> bool
