type ns = Kernsim.Time.ns

type arrival =
  | Poisson of { rate : float }
  | Diurnal of { mean_rate : float; amplitude : float; period : ns }
  | Burst of { base_rate : float; burst_rate : float; mean_on : ns; mean_off : ns }

let pi = 4.0 *. atan 1.0

let rate_at a t =
  match a with
  | Poisson { rate } -> rate
  | Diurnal { mean_rate; amplitude; period } ->
    mean_rate *. (1.0 +. (amplitude *. sin (2.0 *. pi *. float_of_int t /. float_of_int period)))
  | Burst { base_rate; burst_rate; mean_on; mean_off } ->
    let on = float_of_int mean_on and off = float_of_int mean_off in
    ((base_rate *. off) +. (burst_rate *. on)) /. (on +. off)

let mean_rate = function
  | Poisson { rate } -> rate
  | Diurnal { mean_rate; _ } -> mean_rate
  | (Burst _) as b -> rate_at b 0

type tenant = {
  name : string;
  arrival : arrival;
  service : Stats.Dist.t;
  flow_len_mean : float;
  connections : int;
}

type request = { req_id : int; tenant : int; flow_key : int; arrived : ns; service : ns }

let standard_mix ?(connections = 256) ?(flow_len = 8.0) ~load_kreqs () =
  let total = load_kreqs *. 1000.0 in
  [
    {
      name = "web";
      arrival = Poisson { rate = 0.60 *. total };
      service = Stats.Dist.uniform ~lo:5_000.0 ~hi:25_000.0;
      flow_len_mean = flow_len;
      connections;
    };
    {
      name = "api";
      arrival =
        Diurnal { mean_rate = 0.25 *. total; amplitude = 0.7; period = Kernsim.Time.ms 200 };
      service = Stats.Dist.lognormal ~mu:(log 12_000.0) ~sigma:0.5;
      flow_len_mean = flow_len;
      connections;
    };
    {
      (* the antagonist: bursty arrivals, heavy-tailed services *)
      name = "batch";
      arrival =
        (let mean = 0.15 *. total in
         let base = mean /. 1.4 in
         Burst
           {
             base_rate = base;
             burst_rate = 3.0 *. base;
             mean_on = Kernsim.Time.ms 20;
             mean_off = Kernsim.Time.ms 80;
           });
      service = Stats.Dist.pareto ~alpha:1.3 ~lo:20_000.0 ~hi:2_000_000.0;
      flow_len_mean = flow_len;
      connections;
    };
  ]

(* One connection slot: the only live state a flow ever occupies.  All
   randomness comes from the slot's own stream, so advancing a slot is
   independent of every other slot and of the caller's window size. *)
type slot = {
  rng : Stats.Prng.t;
  mutable next_at : ns;
  mutable remaining : int;  (* requests left in the open flow *)
  mutable flow_seq : int;  (* per-slot flow counter (feeds flow_key) *)
  mutable on : bool;  (* Burst phase *)
  mutable phase_until : ns;
}

type t = {
  tenants : tenant array;
  slots : slot array array;  (* .(tenant).(slot) *)
  mutable flows_started : int;
  mutable flows_completed : int;
  mutable requests_emitted : int;
}

(* Exponential gap in ns for a per-slot rate in req/s; rates <= 0 mean "not
   in this phase", pushed effectively to infinity. *)
let exp_gap rng ~rate_per_sec =
  if rate_per_sec <= 0.0 then max_int / 4
  else
    let mean_ns = 1e9 /. rate_per_sec in
    max 1 (int_of_float (-.log (1.0 -. Stats.Prng.float rng) *. mean_ns))

(* Geometric-ish flow length with the given mean (>= 1 always). *)
let flow_len rng ~mean =
  if mean <= 1.0 then 1
  else 1 + int_of_float (-.log (1.0 -. Stats.Prng.float rng) *. (mean -. 1.0))

(* Advance [slot]'s arrival clock past [from] under [arrival] split over
   [conns] slots.  Diurnal uses thinning against the peak rate, so the
   realised process integrates exactly to the requested profile; Burst
   restarts the gap at each phase boundary (valid by memorylessness). *)
let rec next_arrival arrival ~conns slot ~from =
  let c = float_of_int conns in
  match arrival with
  | Poisson { rate } -> from + exp_gap slot.rng ~rate_per_sec:(rate /. c)
  | Diurnal { mean_rate; amplitude; period = _ } ->
    let peak = mean_rate *. (1.0 +. abs_float amplitude) /. c in
    let cand = from + exp_gap slot.rng ~rate_per_sec:peak in
    let r = rate_at arrival cand /. c in
    if Stats.Prng.float slot.rng *. peak <= r then cand
    else next_arrival arrival ~conns slot ~from:cand
  | Burst { base_rate; burst_rate; mean_on; mean_off } ->
    let rate = (if slot.on then burst_rate else base_rate) /. c in
    let cand = from + exp_gap slot.rng ~rate_per_sec:rate in
    if cand <= slot.phase_until then cand
    else begin
      let resume = slot.phase_until in
      let dwell = if slot.on then mean_off else mean_on in
      slot.on <- not slot.on;
      slot.phase_until <- resume + exp_gap slot.rng ~rate_per_sec:(1e9 /. float_of_int (max 1 dwell));
      next_arrival arrival ~conns slot ~from:resume
    end

(* flow_key layout: tenant | slot | per-slot sequence.  Stable across
   window sizes (nothing global), unique across the run. *)
let key ~tenant ~slot ~seq = (tenant lsl 54) lor (slot lsl 34) lor (seq land 0x3_FFFF_FFFF)

let open_flow t tn slot =
  slot.flow_seq <- slot.flow_seq + 1;
  slot.remaining <- flow_len slot.rng ~mean:tn.flow_len_mean;
  t.flows_started <- t.flows_started + 1

let create ~seed ~start tenants =
  if tenants = [] then invalid_arg "Traffic.create: no tenants";
  let root = Stats.Prng.create ~seed in
  let tenants = Array.of_list tenants in
  let t =
    {
      tenants;
      slots = [||];
      flows_started = 0;
      flows_completed = 0;
      requests_emitted = 0;
    }
  in
  let slots =
    Array.map
      (fun tn ->
        if tn.connections <= 0 then invalid_arg "Traffic.create: connections must be positive";
        let tenant_rng = Stats.Prng.split root in
        Array.init tn.connections (fun _ ->
            let rng = Stats.Prng.split tenant_rng in
            let slot =
              { rng; next_at = start; remaining = 0; flow_seq = -1; on = false; phase_until = start }
            in
            (* stagger the first burst phase boundary so slots drift apart *)
            (match tn.arrival with
            | Burst { mean_off; _ } ->
              slot.phase_until <-
                start + exp_gap rng ~rate_per_sec:(1e9 /. float_of_int (max 1 mean_off))
            | _ -> ());
            open_flow t tn slot;
            slot.next_at <- next_arrival tn.arrival ~conns:tn.connections slot ~from:start;
            slot))
      tenants
  in
  { t with slots }

let next_window t ~until =
  let acc = ref [] in
  Array.iteri
    (fun ti (tn : tenant) ->
      let slots = t.slots.(ti) in
      Array.iteri
        (fun si slot ->
          while slot.next_at < until do
            let service =
              max 1 (int_of_float (Stats.Dist.sample tn.service slot.rng))
            in
            let req =
              {
                req_id = 0;
                tenant = ti;
                flow_key = key ~tenant:ti ~slot:si ~seq:slot.flow_seq;
                arrived = slot.next_at;
                service;
              }
            in
            acc := (req.arrived, ti, si, req) :: !acc;
            t.requests_emitted <- t.requests_emitted + 1;
            slot.remaining <- slot.remaining - 1;
            if slot.remaining <= 0 then begin
              t.flows_completed <- t.flows_completed + 1;
              open_flow t tn slot
            end;
            slot.next_at <- next_arrival tn.arrival ~conns:tn.connections slot ~from:slot.next_at
          done)
        slots)
    t.tenants;
  (* request-ids are dense in (time, tenant, slot) order, assigned after
     the sort: windows partition the stream by arrival time, so the ids a
     request gets are independent of the caller's window size *)
  let base = t.requests_emitted - List.length !acc in
  !acc
  |> List.sort (fun (a, ta, sa, _) (b, tb, sb, _) -> compare (a, ta, sa) (b, tb, sb))
  |> List.mapi (fun i (_, _, _, r) -> { r with req_id = base + i })

let tenant_name t i = t.tenants.(i).name

let nr_tenants t = Array.length t.tenants

let flows_started t = t.flows_started

let flows_completed t = t.flows_completed

let requests_emitted t = t.requests_emitted

let live_flows t = Array.fold_left (fun n s -> n + Array.length s) 0 t.slots
