(** The open-loop traffic engine: seeded streaming flow generators.

    A {e tenant} is one traffic class — an arrival process, a service-time
    distribution, a mean flow length, and a fixed pool of connection slots.
    Each slot cycles open → emit its flow's requests at open-loop gaps →
    close → reopen as a fresh flow, so the engine sustains millions of
    {e flows} while its live state is exactly the slot pool: memory is
    bounded by construction, independent of how many flows the run churns
    through (the §5-scale acceptance property).

    Every slot owns a {!Stats.Prng} stream split from the engine seed at
    creation, and advances only on its own state, so the emitted request
    stream is bit-for-bit identical for a given seed {e regardless of the
    window size} the caller drains with — the fleet tier's epoch length
    cannot perturb the traffic. *)

type ns = Kernsim.Time.ns

(** Arrival processes; rates in requests/second for the whole tenant
    (split evenly across its connection slots, so the aggregate is exact
    by Poisson superposition). *)
type arrival =
  | Poisson of { rate : float }  (** homogeneous open-loop arrivals *)
  | Diurnal of { mean_rate : float; amplitude : float; period : ns }
      (** sinusoidal rate [mean*(1 + amp*sin(2pi t/period))], sampled by
          thinning, so it integrates exactly to [mean_rate] over a period *)
  | Burst of { base_rate : float; burst_rate : float; mean_on : ns; mean_off : ns }
      (** per-slot on/off modulated Poisson (antagonist bursts): [burst_rate]
          during exponential on-phases of mean [mean_on], [base_rate]
          otherwise *)

(** Instantaneous rate (req/s) at simulated time [t] — test hook for the
    diurnal-integral property.  [Burst] reports its time-average. *)
val rate_at : arrival -> ns -> float

(** Time-average rate in req/s. *)
val mean_rate : arrival -> float

type tenant = {
  name : string;
  arrival : arrival;
  service : Stats.Dist.t;  (** per-request service time, ns *)
  flow_len_mean : float;  (** mean requests per flow (geometric), >= 1 *)
  connections : int;  (** slot-pool size: the live-flow bound *)
}

(** A request emitted by the engine.  [req_id] is a dense fleet-wide
    request-id (emission order, deterministic for a seed) that the anatomy
    layer threads through the stack; [flow_key] is stable for all requests
    of one flow and unique across the run (consistent-hash LB affinity keys
    on it); [tenant] indexes the creation-time tenant list. *)
type request = { req_id : int; tenant : int; flow_key : int; arrived : ns; service : ns }

(** The canonical three-tenant fleet mix, splitting [load_kreqs] (total
    thousand req/s) as: [web] 60% steady Poisson with 5–25 us services,
    [api] 25% diurnal (0.7 amplitude, 200 ms period) with log-normal
    services, and [batch] 15% bursty antagonist with heavy-tailed Pareto
    services — the multi-tenant antagonist mix the fleet benches drive. *)
val standard_mix : ?connections:int -> ?flow_len:float -> load_kreqs:float -> unit -> tenant list

type t

(** [create ~seed ~start tenants] opens every slot with its first flow;
    first arrivals fall after [start]. *)
val create : seed:int -> start:ns -> tenant list -> t

(** All requests with [arrived < until], in (time, tenant, slot) order;
    each call resumes where the previous one stopped. *)
val next_window : t -> until:ns -> request list

val tenant_name : t -> int -> string

val nr_tenants : t -> int

(** Flows opened / fully emitted so far. *)
val flows_started : t -> int

val flows_completed : t -> int

val requests_emitted : t -> int

(** Flows currently open — always exactly the total connection-slot count,
    whatever the churn: the bounded-memory invariant. *)
val live_flows : t -> int
