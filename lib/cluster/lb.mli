(** The fleet load balancer: pluggable placement policies over N hosts.

    The balancer tracks per-host outstanding request counts and an
    up/drained flag per host; {!pick} never returns a drained host (the
    chaos-drill and rolling-upgrade invariant) and returns [None] only
    when every host is drained.  All tie-breaking randomness comes from
    one seeded {!Stats.Prng} stream, so placement is a pure function of
    (seed, policy, operation sequence). *)

type policy =
  | Round_robin
  | Least_outstanding  (** fewest in-flight requests; seeded tie-break *)
  | Weighted  (** smooth weighted round-robin (nginx style) *)
  | Consistent_hash
      (** 64-vnode hash ring keyed on the request's flow key: flows stick
          to hosts, and draining one host remaps only that host's keys *)

val policy_of_string : string -> (policy, string) result

val policy_name : policy -> string

val policy_names : string list

type t

(** [weights] (default all-1) only matters for [Weighted]. *)
val create : ?weights:int array -> policy:policy -> hosts:int -> seed:int -> unit -> t

val nr_hosts : t -> int

(** Choose a host for a request with affinity key [key]; [None] iff all
    hosts are drained.  Does not bump the outstanding count — callers pair
    it with {!dispatch}. *)
val pick : t -> key:int -> int option

(** Account one request dispatched to / completed on a host. *)
val dispatch : t -> int -> unit

val complete : t -> int -> unit

val outstanding : t -> int -> int

(** Take a host out of / back into rotation. *)
val drain : t -> int -> unit

val admit : t -> int -> unit

val drained : t -> int -> bool
