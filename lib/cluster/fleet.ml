module T = Kernsim.Task
module M = Kernsim.Machine
module Reg = Metrics.Registry

type ns = Kernsim.Time.ns

type upgrade = { at : ns; stagger : ns }

type chaos = { victim : int; after_calls : int; recovery : ns }

(* Cross-host side effects produced while a host's machine advances.

   Under `-j N` the hosts of one epoch run concurrently, so anything that
   touches fleet-shared state (the balancer, per-tenant counters, shared
   histograms, the anatomy aggregator, the oplog) is not applied inline:
   the advancing host buffers it here — with every input value captured at
   emission time — and the coordinating domain replays the buffers in
   fixed host order at the epoch barrier.  Sequential runs go through the
   same buffers, and the replay order (host 0's effects, then host 1's,
   each host chronological) is exactly the order the old sequential loop
   produced them in, which is why `-j N` is byte-identical to `-j 1`. *)
type fx =
  | Fx_done of { tenant : int; lat : ns; measured : bool; blackout : bool }
  | Fx_drop of { tenant : int }
  | Fx_anat_enq of { req : int; tenant : int; arrived : ns; service : ns; now : ns }
  | Fx_anat_take of { req : int; pid : int; last_wake : ns; migrations : int; now : ns }
  | Fx_anat_done of { req : int; migrations : int; now : ns }
  | Fx_oplog of { ts : ns; name : string }
  | Fx_upgraded of { pause : ns }
  | Fx_upgrade_failed

type host = {
  id : int;
  entry : Schedulers.Registry.entry;
  built : Workloads.Setup.built;
  chan : int;  (* ingress doorbell *)
  queue : Traffic.request Queue.t;
  tracer : Trace.Tracer.t option;  (* chaos victim only *)
  sanitizer : Trace.Sanitizer.t option;
  hist : Reg.histogram;
  (* the host's domain-local lock state (mode, tap, id counter) as a value:
     installed around every machine advance so the host's lock identity —
     including host 0's record stream — travels with the host, whichever
     domain runs it *)
  mutable lock_ctx : Enoki.Lock.ctx;
  mutable fx : fx list;  (* newest first; deferred to the epoch barrier *)
  mutable inflight : int;  (* queued + executing *)
  mutable completed : int;
  mutable pending_drain : string option;  (* set by the watchdog *)
  mutable drilled : bool;  (* has been drained once *)
  mutable readmitted : bool;
  mutable drained_at : ns;
  mutable bl_from : ns;  (* last upgrade's blackout window *)
  mutable bl_until : ns;
}

type t = {
  epoch : ns;
  warmup : ns;
  queue_cap : int;
  dispatch_overhead : ns;
  recovery : ns;
  observe : bool;  (* false = never measure: the no-observability baseline *)
  pool : Ds.Domain_pool.t option;  (* epoch-parallel host advance *)
  traffic : Traffic.t;
  lb : Lb.t;
  hosts : host array;
  reg : Reg.t;
  tenant_hist : Reg.histogram array;
  blackout_h : Reg.histogram;
  anat : Trace.Anatomy.t option;
  completed : int array;  (* per tenant *)
  dropped : int array;
  rejected : int array;
  mutable clock : ns;
  mutable measuring : bool;
  mutable oplog : (ns * int * string) list;  (* newest first *)
  mutable upgrades_done : (int * ns) list;  (* newest first *)
  mutable upgrade_failures : int;
}

let fx host e = host.fx <- e :: host.fx

let op t host ~ts name =
  t.oplog <- (ts, host.id, name) :: t.oplog;
  match host.tracer with
  | Some tr -> Trace.Tracer.emit tr ~ts ~cpu:0 (Trace.Event.Fleet_op { host = host.id; op = name })
  | None -> ()

(* A server task: pull a request off the host queue, pay dispatch overhead
   plus its service time, account the end-to-end latency, block on the
   doorbell for the next one.  Signals pair one-to-one with enqueued
   requests, so a woken worker always finds work.  Runs inside the host's
   machine, possibly on a pool domain: host-local state (queue, inflight,
   the host's own histogram, its tracer) is touched directly; everything
   fleet-shared goes through the [fx] buffer. *)
let worker_beh t host =
  let st = ref `Take in
  fun (ctx : T.ctx) ->
    match !st with
    | `Take -> (
      match Queue.take_opt host.queue with
      | None -> T.Block host.chan
      | Some req ->
        st := `Done req;
        (* request-context markers ride the host tracer whenever one exists,
           independent of the anatomy switch — so toggling anatomy cannot
           change any event stream (the zero-perturbation contract) *)
        (match host.tracer with
        | Some tr ->
          Trace.Tracer.emit tr ~ts:ctx.T.now ~cpu:ctx.T.cpu
            (Trace.Event.Req_take { req = req.Traffic.req_id; pid = ctx.T.self })
        | None -> ());
        (match t.anat with
        | Some _ -> (
          match M.find_task host.built.Workloads.Setup.machine ctx.T.self with
          | Some task ->
            fx host
              (Fx_anat_take
                 {
                   req = req.Traffic.req_id;
                   pid = ctx.T.self;
                   last_wake = task.T.last_wake;
                   migrations = task.T.migrations;
                   now = ctx.T.now;
                 })
          | None -> ())
        | None -> ());
        T.Compute (t.dispatch_overhead + req.Traffic.service))
    | `Done req ->
      let lat = ctx.T.now - req.Traffic.arrived in
      host.inflight <- host.inflight - 1;
      host.completed <- host.completed + 1;
      if t.measuring then Reg.observe host.hist lat;
      fx host
        (Fx_done
           {
             tenant = req.Traffic.tenant;
             lat;
             measured = t.measuring;
             blackout =
               host.bl_from >= 0 && ctx.T.now >= host.bl_from && ctx.T.now <= host.bl_until;
           });
      (match host.tracer with
      | Some tr ->
        Trace.Tracer.emit tr ~ts:ctx.T.now ~cpu:ctx.T.cpu
          (Trace.Event.Req_done { req = req.Traffic.req_id; pid = ctx.T.self })
      | None -> ());
      (match t.anat with
      | Some _ -> (
        match M.find_task host.built.Workloads.Setup.machine ctx.T.self with
        | Some task ->
          fx host
            (Fx_anat_done
               { req = req.Traffic.req_id; migrations = task.T.migrations; now = ctx.T.now })
        | None -> ())
      | None -> ());
      st := `Take;
      T.Block host.chan

let host_label (e : Schedulers.Registry.entry) = e.Schedulers.Registry.name

let create ?(topology = Kernsim.Topology.one_socket) ?(workers = 6) ?(queue_cap = 4096)
    ?(epoch = Kernsim.Time.ms 1) ?(warmup = 0) ?(dispatch_overhead = Kernsim.Time.us 2) ?weights
    ?(lb = Lb.Least_outstanding) ?upgrade ?chaos ?(anatomy = false) ?(anatomy_top = 8) ?record
    ?(observe = true) ?pool ~seed ~hosts ~tenants () =
  if hosts = [] then invalid_arg "Fleet.create: no hosts";
  let entries = Array.of_list hosts in
  let n = Array.length entries in
  (* one root seed, split in fixed order: everything downstream is a pure
     function of it (the reproducibility satellite) *)
  let root = Stats.Prng.create ~seed in
  let traffic_seed = Stats.Prng.next root in
  let lb_seed = Stats.Prng.next root in
  let chaos_seed = Stats.Prng.next root in
  let traffic = Traffic.create ~seed:traffic_seed ~start:0 tenants in
  let balancer = Lb.create ?weights ~policy:lb ~hosts:n ~seed:lb_seed () in
  let reg = Reg.create () in
  (match chaos with
  | Some c when c.victim < 0 || c.victim >= n -> invalid_arg "Fleet.create: chaos victim out of range"
  | _ -> ());
  let plan_for (c : chaos) =
    let spec = Printf.sprintf "panic@pick_next_task:after=%d,p=1,max=1" c.after_calls in
    match Fault.Plan.parse spec with
    | Ok p -> p
    | Error e -> invalid_arg ("Fleet.create: " ^ e)
  in
  let mk_host id entry =
    let is_victim = match chaos with Some c -> c.victim = id | None -> false in
    let kind =
      match (Workloads.Setup.of_registry entry, chaos) with
      | Workloads.Setup.Enoki_sched m, Some c when is_victim ->
        Workloads.Setup.Enoki_sched (Fault.Inject.wrap ~seed:chaos_seed ~plan:(plan_for c) m)
      | _, Some _ when is_victim ->
        invalid_arg "Fleet.create: chaos victim must be an Enoki-module host"
      | k, _ -> k
    in
    let tracer, sanitizer =
      if is_victim then begin
        let tr = Trace.Tracer.create ~nr_cpus:(Kernsim.Topology.nr_cpus topology) () in
        let sz = Trace.Sanitizer.create ~nr_cpus:(Kernsim.Topology.nr_cpus topology) () in
        Trace.Sanitizer.attach sz tr;
        (Some tr, Some sz)
      end
      else (None, None)
    in
    (* tracer-ring probes for the victim land in the fleet registry under a
       host label, so they survive next to the per-tenant series *)
    (match tracer with
    | Some tr ->
      Workloads.Setup.register_tracer_probes ~labels:[ ("host", string_of_int id) ] reg tr
    | None -> ());
    let record = if id = 0 then record else None in
    (* each host builds — and later advances — under its own pristine lock
       context, so one host's record mode or trace tap can never leak into
       another host's (previously, whichever host built last owned the
       whole fleet's ambient lock state) *)
    let outer_ctx = Enoki.Lock.capture_ctx () in
    Enoki.Lock.install_ctx (Enoki.Lock.fresh_ctx ());
    let built = Workloads.Setup.build ?record ?tracer ~topology kind in
    let lock_ctx = Enoki.Lock.capture_ctx () in
    Enoki.Lock.install_ctx outer_ctx;
    let chan = M.new_chan built.Workloads.Setup.machine in
    let hist =
      Reg.histogram reg ~help:"end-to-end request latency per host (ns)"
        (Reg.labeled "fleet_host_latency_ns"
           [ ("host", string_of_int id); ("sched", host_label entry) ])
    in
    {
      id;
      entry;
      built;
      chan;
      queue = Queue.create ();
      tracer;
      sanitizer;
      hist;
      lock_ctx;
      fx = [];
      inflight = 0;
      completed = 0;
      pending_drain = None;
      drilled = false;
      readmitted = false;
      drained_at = 0;
      bl_from = -1;
      bl_until = -1;
    }
  in
  let hosts = Array.mapi mk_host entries in
  let nt = Traffic.nr_tenants traffic in
  let tenant_hist =
    Array.init nt (fun i ->
        Reg.histogram reg ~help:"end-to-end request latency per tenant (ns)"
          (Reg.labeled "fleet_request_latency_ns" [ ("tenant", Traffic.tenant_name traffic i) ]))
  in
  let blackout_h =
    Reg.histogram reg ~help:"request latency inside upgrade blackout windows (ns)"
      "fleet_blackout_latency_ns"
  in
  let anat =
    if not anatomy then None
    else
      let migration_cost =
        (M.costs hosts.(0).built.Workloads.Setup.machine).Kernsim.Costs.migration
      in
      Some
        (Trace.Anatomy.create ~top_k:anatomy_top ~registry:reg ~migration_cost
           ~tenants:(Array.init nt (Traffic.tenant_name traffic))
           ~hosts:n ())
  in
  let t =
    {
      epoch;
      warmup;
      queue_cap;
      dispatch_overhead;
      recovery = (match chaos with Some c -> c.recovery | None -> Kernsim.Time.ms 10);
      observe;
      pool;
      traffic;
      lb = balancer;
      hosts;
      reg;
      tenant_hist;
      blackout_h;
      anat;
      completed = Array.make nt 0;
      dropped = Array.make nt 0;
      rejected = Array.make nt 0;
      clock = 0;
      measuring = observe && warmup <= 0;
      oplog = [];
      upgrades_done = [];
      upgrade_failures = 0;
    }
  in
  (* per-tenant counters surface in the exported metrics as probes over
     the authoritative arrays — no double bookkeeping on the hot path *)
  for i = 0 to nt - 1 do
    let lbl name = Reg.labeled name [ ("tenant", Traffic.tenant_name traffic i) ] in
    Reg.gauge_probe reg ~help:"requests completed" (lbl "fleet_completed_total") (fun () ->
        float_of_int t.completed.(i));
    Reg.gauge_probe reg ~help:"requests dropped on host-queue overflow" (lbl "fleet_dropped_total")
      (fun () -> float_of_int t.dropped.(i));
    Reg.gauge_probe reg ~help:"requests rejected with every host drained"
      (lbl "fleet_rejected_total") (fun () -> float_of_int t.rejected.(i))
  done;
  Array.iter
    (fun host ->
      let m = host.built.Workloads.Setup.machine in
      (* the server pool *)
      for w = 0 to workers - 1 do
        ignore
          (M.spawn m
             {
               (T.default_spec ~name:(Printf.sprintf "srv%d-%d" host.id w) (worker_beh t host)) with
               T.policy = host.built.Workloads.Setup.policy;
               group = "server";
             })
      done;
      (* a ghOSt global agent really spins on its core *)
      (match host.built.Workloads.Setup.agent_core with
      | Some core ->
        let spin (_ : T.ctx) = T.Compute (Kernsim.Time.us 100) in
        ignore
          (M.spawn m
             {
               (T.default_spec ~name:"ghost-agent" spin) with
               T.policy = host.built.Workloads.Setup.cfs_policy;
               group = "ghost-agent";
               nice = -20;
               affinity = Some [ core ];
             })
      | None -> ());
      (* the watchdog path: panic burst of 1 (the drill injects exactly
         one), action deferred to the epoch poll via [pending_drain] *)
      (match (host.tracer, host.sanitizer) with
      | Some tr, sz ->
        let config =
          { Fault.Watchdog.default_config with panic_burst = 1; starvation = false; max_fires = 2 }
        in
        let w =
          Fault.Watchdog.create ~config ?sanitizer:sz
            ~action:(fun ~reason ~at:_ -> host.pending_drain <- Some reason)
            ()
        in
        Fault.Watchdog.attach w tr
      | None, _ -> ());
      (* the rolling-upgrade schedule, staggered by host id; the callback
         fires mid-advance (possibly on a pool domain), so its fleet-wide
         bookkeeping rides the fx buffer while the host-local blackout
         window and trace marker apply in place *)
      match (upgrade, host.built.Workloads.Setup.enoki, Schedulers.Registry.enoki_module host.entry)
      with
      | Some u, Some e, Some m ->
        M.at host.built.Workloads.Setup.machine
          ~delay:(u.at + (host.id * u.stagger))
          (fun () ->
            let now = M.now host.built.Workloads.Setup.machine in
            fx host (Fx_oplog { ts = now; name = "upgrade" });
            (match host.tracer with
            | Some tr ->
              Trace.Tracer.emit tr ~ts:now ~cpu:0
                (Trace.Event.Fleet_op { host = host.id; op = "upgrade" })
            | None -> ());
            match Enoki.Enoki_c.upgrade e m with
            | Ok (s : Enoki.Upgrade.stats) ->
              host.bl_from <- now;
              host.bl_until <- now + s.Enoki.Upgrade.pause + t.epoch;
              fx host (Fx_upgraded { pause = s.Enoki.Upgrade.pause })
            | Error _ -> fx host Fx_upgrade_failed)
      | _ -> ())
    hosts;
  t

let quarantined host =
  match host.built.Workloads.Setup.enoki with
  | Some e -> (Enoki.Enoki_c.failover_stats e).Enoki.Enoki_c.quarantined <> None
  | None -> false

(* The drill state machine, polled once per epoch: quarantine (or a
   watchdog fire) -> LB drain; queue dry + recovery delay -> re-admit. *)
let poll_drills t =
  Array.iter
    (fun host ->
      if (not host.drilled) && (host.pending_drain <> None || quarantined host) then begin
        host.drilled <- true;
        host.drained_at <- t.clock;
        Lb.drain t.lb host.id;
        op t host ~ts:t.clock "drain"
      end
      else if
        host.drilled && (not host.readmitted) && host.inflight = 0
        && t.clock >= host.drained_at + t.recovery
      then begin
        host.readmitted <- true;
        Lb.admit t.lb host.id;
        op t host ~ts:t.clock "admit"
      end)
    t.hosts

let place t (req : Traffic.request) =
  match Lb.pick t.lb ~key:req.Traffic.flow_key with
  | None -> t.rejected.(req.Traffic.tenant) <- t.rejected.(req.Traffic.tenant) + 1
  | Some h ->
    Lb.dispatch t.lb h;
    let host = t.hosts.(h) in
    let m = host.built.Workloads.Setup.machine in
    let delay = max 0 (req.Traffic.arrived - M.now m) in
    M.at m ~delay (fun () ->
        if Queue.length host.queue >= t.queue_cap then
          fx host (Fx_drop { tenant = req.Traffic.tenant })
        else begin
          Queue.add req host.queue;
          host.inflight <- host.inflight + 1;
          (match host.tracer with
          | Some tr ->
            Trace.Tracer.emit tr ~ts:(M.now m) ~cpu:0
              (Trace.Event.Req_enqueue { req = req.Traffic.req_id; tenant = req.Traffic.tenant })
          | None -> ());
          (match t.anat with
          | Some _ ->
            fx host
              (Fx_anat_enq
                 {
                   req = req.Traffic.req_id;
                   tenant = req.Traffic.tenant;
                   arrived = req.Traffic.arrived;
                   service = t.dispatch_overhead + req.Traffic.service;
                   now = M.now m;
                 })
          | None -> ());
          M.signal m host.chan
        end)

(* Replay one host's buffered effects on the coordinating domain.  Called
   in host order at the epoch barrier; within a host the buffer replays
   chronologically — together that is exactly the order the sequential
   loop used to produce these side effects in, so the shared state (LB
   outstanding counts, tenant counters, shared histograms, anatomy, the
   oplog) ends every epoch bit-identical for any [-j]. *)
let apply_fx t host =
  List.iter
    (fun e ->
      match e with
      | Fx_done { tenant; lat; measured; blackout } ->
        Lb.complete t.lb host.id;
        t.completed.(tenant) <- t.completed.(tenant) + 1;
        if measured then Reg.observe t.tenant_hist.(tenant) lat;
        if blackout then Reg.observe t.blackout_h lat
      | Fx_drop { tenant } ->
        t.dropped.(tenant) <- t.dropped.(tenant) + 1;
        Lb.complete t.lb host.id
      | Fx_anat_enq { req; tenant; arrived; service; now } -> (
        match t.anat with
        | Some a -> Trace.Anatomy.enqueue a ~req ~tenant ~host:host.id ~arrived ~service ~now
        | None -> ())
      | Fx_anat_take { req; pid; last_wake; migrations; now } -> (
        match t.anat with
        | Some a -> Trace.Anatomy.take a ~req ~pid ~last_wake ~migrations ~now
        | None -> ())
      | Fx_anat_done { req; migrations; now } -> (
        match t.anat with
        | Some a -> Trace.Anatomy.complete a ~req ~migrations ~now
        | None -> ())
      | Fx_oplog { ts; name } -> t.oplog <- (ts, host.id, name) :: t.oplog
      | Fx_upgraded { pause } -> t.upgrades_done <- (host.id, pause) :: t.upgrades_done
      | Fx_upgrade_failed -> t.upgrade_failures <- t.upgrade_failures + 1)
    (List.rev host.fx);
  host.fx <- []

(* Advance one host's machine to the epoch boundary under the host's own
   lock context.  Safe on any domain: everything it mutates is host-local
   or buffered in [host.fx]. *)
let advance_host host ~until =
  let outer = Enoki.Lock.capture_ctx () in
  Enoki.Lock.install_ctx host.lock_ctx;
  Fun.protect
    (fun () -> M.run_until host.built.Workloads.Setup.machine until)
    ~finally:(fun () ->
      (* a live upgrade may have reinstalled the host's tap/record mode *)
      host.lock_ctx <- Enoki.Lock.capture_ctx ();
      Enoki.Lock.install_ctx outer)

let step t ~limit =
  let until = min (t.clock + t.epoch) limit in
  if t.observe && (not t.measuring) && t.clock >= t.warmup then t.measuring <- true;
  List.iter (place t) (Traffic.next_window t.traffic ~until);
  (* the epoch is a conservative-lookahead barrier: no host-to-host event
     crosses it (LB and ingress happen above, at epoch edges), so the
     hosts advance independently — in parallel when a pool is attached *)
  (match t.pool with
  | Some pool when Ds.Domain_pool.size pool > 1 ->
    Ds.Domain_pool.run pool (Array.map (fun h () -> advance_host h ~until) t.hosts)
  | _ -> Array.iter (fun h -> advance_host h ~until) t.hosts);
  (* deterministic merge: fixed host order, chronological within a host *)
  Array.iter (apply_fx t) t.hosts;
  t.clock <- until;
  poll_drills t

let run t ~until = while t.clock < until do step t ~limit:until done

let run_flows t ~flows ~max_time =
  while Traffic.flows_completed t.traffic < flows && t.clock < max_time do
    step t ~limit:max_time
  done

let clock t = t.clock

let nr_hosts t = Array.length t.hosts

let registry t = t.reg

let anatomy t = t.anat

let events_dispatched t =
  Array.fold_left (fun n h -> n + M.events_dispatched h.built.Workloads.Setup.machine) 0 t.hosts

let traffic t = t.traffic

let lb t = t.lb

type tenant_stat = {
  tenant : string;
  completed : int;
  dropped : int;
  rejected : int;
  p50 : ns;
  p99 : ns;
  p999 : ns;
}

let tenant_stats t =
  List.init (Traffic.nr_tenants t.traffic) (fun i ->
      let h = Reg.merged t.tenant_hist.(i) in
      {
        tenant = Traffic.tenant_name t.traffic i;
        completed = t.completed.(i);
        dropped = t.dropped.(i);
        rejected = t.rejected.(i);
        p50 = Stats.Histogram.percentile h 50.0;
        p99 = Stats.Histogram.percentile h 99.0;
        p999 = Stats.Histogram.percentile h 99.9;
      })

type host_stat = {
  host : int;
  sched : string;
  completed : int;
  p99 : ns;
  drained : bool;
  quarantined : bool;
}

let host_stats t =
  Array.to_list
    (Array.map
       (fun h ->
         {
           host = h.id;
           sched = host_label h.entry;
           completed = h.completed;
           p99 = Stats.Histogram.percentile (Reg.merged h.hist) 99.0;
           drained = Lb.drained t.lb h.id;
           quarantined = quarantined h;
         })
       t.hosts)

let upgrades t = List.rev t.upgrades_done

let upgrade_failures t = t.upgrade_failures

let blackout t = Reg.merged t.blackout_h

let oplog t = List.rev t.oplog

let converged t = Array.for_all (fun h -> (not h.drilled) || h.readmitted) t.hosts

let sanitizer_ok t =
  Array.for_all
    (fun h -> match h.sanitizer with Some sz -> Trace.Sanitizer.ok sz | None -> true)
    t.hosts
