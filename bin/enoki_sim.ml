(* enoki_sim: command-line driver for the simulator.

   Runs a (scheduler x workload) combination, optionally recording the
   scheduler's message log, replaying a log, or live-upgrading mid-run.
   The --sched vocabulary comes from Schedulers.Registry (run
   `enoki_sim run --help` for the current list).

     enoki_sim run --sched wfq --workload pipe
     enoki_sim run --sched shinjuku --workload rocksdb --load 60
     enoki_sim run --sched scx-prio-dq --workload schbench --sanitize
     enoki_sim record --sched wfq --workload pipe --out /tmp/wfq.rec
     enoki_sim replay --sched wfq --log /tmp/wfq.rec
     enoki_sim upgrade --sched scx-simple --workload schbench *)

open Cmdliner

(* the registry is the single source of truth: names, help text and the
   bad-name error all derive from it *)
let sched_conv =
  let parse s =
    match Schedulers.Registry.find s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown scheduler %S (expected one of: %s)" s
             (String.concat ", " Schedulers.Registry.names)))
  in
  Arg.conv
    (parse, fun fmt (e : Schedulers.Registry.entry) -> Format.pp_print_string fmt e.name)

let kind_of_sched = Workloads.Setup.of_registry

let module_of_sched = Schedulers.Registry.enoki_module

(* "an Enoki scheduler (fifo/wfq/...)" for record/replay/upgrade errors *)
let enoki_scheds_hint =
  Printf.sprintf "an Enoki scheduler (%s)"
    (String.concat "/" Schedulers.Registry.enoki_names)

type workload = Pipe | Schbench | Rocksdb | Memcached

let workload_conv =
  Arg.enum
    [ ("pipe", Pipe); ("schbench", Schbench); ("rocksdb", Rocksdb); ("memcached", Memcached) ]

let sched_arg =
  let default =
    match Schedulers.Registry.find "wfq" with
    | Some e -> e
    | None -> List.hd Schedulers.Registry.all
  in
  Arg.(
    value & opt sched_conv default
    & info [ "sched"; "s" ] ~docv:"SCHED"
        ~doc:
          (Printf.sprintf "Scheduler to run: %s."
             (String.concat ", "
                (List.map (Printf.sprintf "$(b,%s)") Schedulers.Registry.names))))

let workload_arg =
  Arg.(
    value
    & opt workload_conv Pipe
    & info [ "workload"; "w" ] ~docv:"WORKLOAD" ~doc:"Workload to drive the machine with.")

let load_arg =
  Arg.(
    value & opt float 40.0
    & info [ "load" ] ~docv:"KREQS" ~doc:"Offered load in thousand requests/s (server workloads).")

let cores_arg =
  Arg.(value & opt int 8 & info [ "cores" ] ~docv:"N" ~doc:"Number of simulated cores (8 or 80).")

let topology_of_cores = function
  | 80 -> Kernsim.Topology.two_socket
  | 8 -> Kernsim.Topology.one_socket
  | n -> Kernsim.Topology.create ~cores:n ~cores_per_llc:n ~cores_per_node:n

let core_arg =
  Arg.(
    value
    & opt (enum [ ("wheel", `Wheel); ("heap", `Heap) ]) `Wheel
    & info [ "core" ] ~docv:"BACKEND"
        ~doc:
          "Event-queue backend for the simulator core: $(b,wheel) (hierarchical timing \
           wheel, the default) or $(b,heap) (the reference binary heap).  Both dispatch \
           the identical event stream; only speed differs.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH" ~doc:"Write a schedtrace of the run to $(docv).")

let trace_format_conv =
  Arg.conv
    ( (fun s ->
        match Trace.Export.format_of_string s with
        | Some f -> Ok f
        | None -> Error (`Msg (Printf.sprintf "unknown trace format %S (chrome|ftrace)" s))),
      fun fmt f -> Format.pp_print_string fmt (Trace.Export.format_to_string f) )

let trace_format_arg =
  Arg.(
    value
    & opt trace_format_conv Trace.Export.Chrome
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Trace output format: $(b,chrome) (trace-event JSON, loadable in chrome://tracing \
           or Perfetto) or $(b,ftrace) (text).")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Check scheduling invariants online (no double-run, no starvation, work \
           conservation, Schedulable token discipline, lock pairing) and report violations.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Workload PRNG seed.  Defaults to each workload's canonical seed; the effective \
           seed is printed so any run can be reproduced from its output.")

let fault_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"SPEC"
        ~doc:
          "Inject faults into the scheduler module: a preset ($(b,panic), $(b,wrong-reply), \
           $(b,bad-select), $(b,latency), $(b,wedge), $(b,chaos)) or a rule spec like \
           $(b,panic\\@pick_next_task:p=0.01,after=1000).  Requires an Enoki scheduler.")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"Seed for the fault injector's PRNG; equal seeds reproduce the same faults.")

let call_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "call-budget" ] ~docv:"NS"
        ~doc:
          "Simulated-time budget per scheduler invocation; overruns are counted, traced, \
           and feed the watchdog (the wedged-module detector).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"PATH"
        ~doc:
          "Attach the metrics registry and write it to $(docv) at the end of the run.  The \
           format follows the extension: $(b,.prom)/$(b,.txt) Prometheus text exposition, \
           $(b,.csv) the sampled time series, anything else a JSON summary.")

let metrics_interval_arg =
  Arg.(
    value
    & opt int Metrics.Sampler.default_interval
    & info [ "metrics-interval" ] ~docv:"NS"
        ~doc:
          "Simulated nanoseconds between metric samples (default 10ms).  Each tick snapshots \
           every registry metric and emits a $(b,metric_flush) trace event.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Profile the Enoki-C dispatch boundary: per-callback crossing counts, simulated ns \
           and host wall-clock ns per call, printed as a table after the run.")

let watchdog_arg =
  Arg.(
    value & flag
    & info [ "watchdog" ]
        ~doc:
          "Arm the recovery watchdog: on panic bursts, call-budget overruns or sanitizer \
           starvation it live-upgrades back to the last-known-good scheduler version.")

(* Shared by the replay subcommand and `run --replay`.  Exit codes: 3 for
   an incomplete (dropped-events) log, 5 for a divergent replay. *)
let do_replay (module S : Enoki.Sched_trait.S) ~path ~allow_drops ~bisect ~window =
  let contents = Enoki.Record.load_file ~path in
  let info = Enoki.Replay.info contents in
  if info.Enoki.Replay.truncated then
    print_endline "note: log is cut off mid-frame; replaying the complete prefix";
  (match info.Enoki.Replay.dropped with
  | Some d when d > 0 ->
    Printf.printf "WARNING: recording dropped %d events to ring overrun\n" d
  | _ -> ());
  match Enoki.Replay.run ~allow_drops (module S) ~log:contents with
  | exception Enoki.Replay.Incomplete_log { dropped } ->
    Printf.eprintf
      "enoki_sim: refusing to replay an incomplete log: %d events were dropped during \
       recording, so divergences would be meaningless (pass --allow-drops to force)\n"
      dropped;
    exit 3
  | report ->
    Format.printf "%a@." Enoki.Replay.pp_report report;
    if report.Enoki.Replay.mismatches <> [] then begin
      (if bisect then
         match Enoki.Replay.bisect ~window (module S) ~log:contents with
         | None -> print_endline "bisect: full log diverges but no minimal prefix found"
         | Some d ->
           Printf.printf "bisect: minimal failing prefix is %d entries\n" d.failing_prefix;
           Printf.printf "first divergent call at log position %d: %s\n" d.seq d.detail;
           List.iter
             (fun e ->
               let seq =
                 match e with
                 | Enoki.Replay.Call { seq; _ } | Enoki.Replay.Lock_event { seq; _ } -> seq
               in
               Printf.printf "  %c %5d: %s\n"
                 (if seq = d.seq then '>' else ' ')
                 seq (Enoki.Replay.entry_line e))
             d.context);
      exit 5
    end

let print_summary (b : Workloads.Setup.built) =
  let mets = Kernsim.Machine.metrics b.machine in
  Printf.printf "schedules: %d, context switches: %d, migrations: %d\n"
    (Kernsim.Accounting.schedules mets)
    (Kernsim.Accounting.context_switches mets)
    (Kernsim.Accounting.migrations mets);
  Report.kv (Workloads.Setup.enoki_summary b)

let run_workload (b : Workloads.Setup.built) workload ~load ~seed =
  match workload with
  | Pipe ->
    (* sched-pipe is closed-loop and PRNG-free; no seed to report *)
    let r = Workloads.Pipe_bench.run b () in
    Printf.printf "sched pipe: %.2f us/wakeup over %d wakeups (completed: %b)\n" r.us_per_wakeup
      r.wakeups r.completed
  | Schbench ->
    let p = Workloads.Schbench.default_params ?seed () in
    Printf.printf "seed: %d\n" p.Workloads.Schbench.seed;
    let r = Workloads.Schbench.run b p in
    Printf.printf "schbench: wakeup latency p50 %s, p99 %s (%d samples)\n"
      (Kernsim.Time.to_string r.p50) (Kernsim.Time.to_string r.p99) r.samples
  | Rocksdb ->
    let p = Workloads.Rocksdb.default_params ?seed ~load_kreqs:load ~with_batch:false () in
    Printf.printf "seed: %d\n" p.Workloads.Rocksdb.seed;
    let r = Workloads.Rocksdb.run b p in
    Printf.printf "rocksdb @ %.0fk req/s: achieved %.1fk, p50 %.1f us, p99 %.1f us\n"
      r.offered_kreqs r.achieved_kreqs r.p50_us r.p99_us
  | Memcached ->
    let p =
      Workloads.Memcached.default_params ?seed ~mode:Workloads.Memcached.Cfs ~load_kreqs:load ()
    in
    Printf.printf "seed: %d\n" p.Workloads.Memcached.seed;
    let r = Workloads.Memcached.run b p in
    Printf.printf "memcached @ %.0fk req/s: achieved %.1fk, p50 %.1f us, p99 %.1f us\n"
      r.offered_kreqs r.achieved_kreqs r.p50_us r.p99_us

let record_path_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"PATH"
        ~doc:
          "Stream a binary record log of the scheduler's messages and lock events to $(docv) \
           while running (bounded memory: the ring drains to the file incrementally).")

let replay_path_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"PATH"
        ~doc:
          "Instead of running a workload, replay the record log at $(docv) against the \
           selected scheduler and exit.")

let allow_drops_arg =
  Arg.(
    value & flag
    & info [ "allow-drops" ]
        ~doc:"Replay a log even if its trailer records ring-overrun drops.")

let bisect_arg =
  Arg.(
    value & flag
    & info [ "bisect" ]
        ~doc:
          "On divergence, binary-search the log for the minimal failing prefix and show the \
           first divergent call with surrounding context.")

let run_cmd =
  let run sched workload load cores sim_backend trace_path trace_format sanitize seed fault_plan
      fault_seed call_budget watchdog metrics_out metrics_interval profile record_path replay_path
      allow_drops bisect =
    (match replay_path with
    | Some path -> (
      match module_of_sched sched with
      | None ->
        prerr_endline "enoki_sim: --replay requires an Enoki scheduler";
        exit 2
      | Some m ->
        do_replay m ~path ~allow_drops ~bisect ~window:3;
        exit 0)
    | None -> ());
    let topology = topology_of_cores cores in
    let registry =
      if metrics_out <> None then
        Some (Metrics.Registry.create ~nr_cpus:(Kernsim.Topology.nr_cpus topology) ())
      else None
    in
    let prof = if profile then Some (Profile.create ()) else None in
    let tracer =
      if trace_path <> None || sanitize || watchdog then
        Some (Trace.Tracer.create ~nr_cpus:(Kernsim.Topology.nr_cpus topology) ())
      else None
    in
    let sanitizer =
      if sanitize then (
        let s = Trace.Sanitizer.create ~nr_cpus:(Kernsim.Topology.nr_cpus topology) () in
        Trace.Sanitizer.attach s (Option.get tracer);
        Some s)
      else None
    in
    let plan =
      match fault_plan with
      | None -> None
      | Some spec -> (
        match Fault.Plan.parse spec with
        | Ok p -> Some p
        | Error msg ->
          Printf.eprintf "enoki_sim: bad fault plan: %s\n" msg;
          exit 2)
    in
    let pristine = module_of_sched sched in
    let tally = Hashtbl.create 8 in
    let kind =
      match (plan, pristine) with
      | Some p, Some m ->
        Workloads.Setup.Enoki_sched (Fault.Inject.wrap ~tally ~seed:fault_seed ~plan:p m)
      | Some _, None ->
        prerr_endline "enoki_sim: --fault-plan requires an Enoki scheduler module";
        exit 2
      | None, _ -> kind_of_sched sched
    in
    let record =
      match record_path with
      | None -> None
      | Some path -> (
        match kind with
        | Workloads.Setup.Enoki_sched _ -> Some (Enoki.Record.create_file ~path ())
        | _ ->
          prerr_endline "enoki_sim: --record requires an Enoki scheduler";
          exit 2)
    in
    let b =
      Workloads.Setup.build ?record ?tracer ?registry ?profile:prof ?call_budget ~sim_backend
        ~topology kind
    in
    let sampler =
      Option.map
        (fun reg ->
          let smp = Metrics.Sampler.create ~interval:metrics_interval reg in
          (match tracer with
          | Some tr ->
            Metrics.Sampler.on_flush smp (fun ~ts ->
                Trace.Tracer.emit tr ~ts ~cpu:0
                  (Trace.Event.Metric_flush { tick = Metrics.Sampler.ticks smp }))
          | None -> ());
          Metrics.Sampler.start smp
            ~now:(fun () -> Kernsim.Machine.now b.machine)
            ~defer:(fun ~delay f -> Kernsim.Machine.at b.machine ~delay f);
          smp)
        registry
    in
    (match plan with
    | Some p -> Printf.printf "fault plan: %s (fault seed %d)\n" (Fault.Plan.to_string p) fault_seed
    | None -> ());
    let wd =
      if not watchdog then None
      else
        match (b.enoki, pristine, tracer) with
        | Some e, Some m, Some tr ->
          let w =
            Fault.Watchdog.create ?sanitizer
              ~action:(fun ~reason ~at:_ ->
                (* recovery re-enters the scheduler: defer it out of the
                   emitting dispatch to the next simulator step *)
                Kernsim.Machine.at b.machine ~delay:0 (fun () ->
                    let r =
                      (* no upgrade happened yet: "last known good" is the
                         pristine, unwrapped module *)
                      match Enoki.Enoki_c.previous e with
                      | Some _ -> Enoki.Enoki_c.rollback e
                      | None -> Enoki.Enoki_c.upgrade e m
                    in
                    match r with
                    | Ok s ->
                      Printf.printf "watchdog: %s -> re-registered %s (pause %s)\n" reason
                        (Enoki.Enoki_c.scheduler_name e)
                        (Kernsim.Time.to_string s.Enoki.Upgrade.pause)
                    | Error exn ->
                      Printf.printf "watchdog: %s -> rollback failed: %s\n" reason
                        (Printexc.to_string exn)))
              ()
          in
          Fault.Watchdog.attach w tr;
          Some w
        | _ ->
          prerr_endline "enoki_sim: --watchdog requires an Enoki scheduler";
          exit 2
    in
    run_workload b workload ~load ~seed;
    (match (record, record_path) with
    | Some r, Some path ->
      Enoki.Record.close r;
      let d = Enoki.Record.dropped r in
      Printf.printf "record: %d events to %s%s\n" (Enoki.Record.length r) path
        (if d > 0 then
           Printf.sprintf
             " — WARNING: %d events DROPPED (ring overrun); replay will refuse this log \
              without --allow-drops"
             d
         else " (0 dropped)")
    | _ -> ());
    print_summary b;
    (match prof with
    | Some p when Profile.crossings p > 0 ->
      print_endline "profile: Enoki-C dispatch boundary";
      Report.table ~header:Profile.table_header (Profile.table_rows p)
    | Some _ -> print_endline "profile: no Enoki-C crossings (native scheduler, nothing to attribute)"
    | None -> ());
    (match (metrics_out, registry) with
    | Some path, Some reg ->
      (* final flush so short runs still get at least one sample *)
      Option.iter
        (fun smp -> Metrics.Sampler.flush smp ~ts:(Kernsim.Machine.now b.machine))
        sampler;
      let fmt = Metrics.Export.format_of_path path in
      (try Metrics.Export.save ~path ?sampler fmt reg
       with Sys_error msg ->
         Printf.eprintf "enoki_sim: cannot write metrics: %s\n" msg;
         exit 2);
      Printf.printf "metrics: %d samples to %s\n"
        (match sampler with Some s -> Metrics.Sampler.ticks s | None -> 0)
        path
    | _ -> ());
    if Hashtbl.length tally > 0 then begin
      let items =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Printf.printf "injected faults: %s\n"
        (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) items))
    end;
    (match wd with
    | Some w ->
      List.iter
        (fun (f : Fault.Watchdog.fire) ->
          Printf.printf "watchdog fired at %s: %s\n" (Kernsim.Time.to_string f.at) f.reason)
        (Fault.Watchdog.fires w)
    | None -> ());
    (match (trace_path, tracer) with
    | Some path, Some tr ->
      let events = Trace.Tracer.events tr in
      (try Trace.Export.save ~path trace_format events
       with Sys_error msg ->
         Printf.eprintf "enoki_sim: cannot write trace: %s\n" msg;
         exit 2);
      Printf.printf "trace: %d events to %s (%s format, %d dropped by ring overrun)\n"
        (List.length events) path
        (Trace.Export.format_to_string trace_format)
        (Trace.Tracer.dropped tr)
    | _ -> ());
    match sanitizer with
    | Some s ->
      print_endline (Trace.Sanitizer.report_string s);
      if not (Trace.Sanitizer.ok s) then exit 3
    | None -> ()
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a workload under a scheduler and print its metrics.")
    Term.(
      const run $ sched_arg $ workload_arg $ load_arg $ cores_arg $ core_arg $ trace_arg
      $ trace_format_arg $ sanitize_arg $ seed_arg $ fault_plan_arg $ fault_seed_arg
      $ call_budget_arg $ watchdog_arg $ metrics_out_arg $ metrics_interval_arg $ profile_arg
      $ record_path_arg $ replay_path_arg $ allow_drops_arg $ bisect_arg)

let out_arg =
  Arg.(
    value & opt string "enoki.rec"
    & info [ "out"; "o" ] ~docv:"PATH" ~doc:"Where to save the record log.")

let record_format_arg =
  Arg.(
    value
    & opt (enum [ ("binary", Enoki.Record.Binary); ("text", Enoki.Record.Text) ]) Enoki.Record.Binary
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Record log wire format: $(b,binary) (compact frames, the default) or $(b,text) \
           (the human-readable debug form).")

let record_cmd =
  let run sched workload load cores out seed format =
    match module_of_sched sched with
    | None -> prerr_endline ("record requires " ^ enoki_scheds_hint)
    | Some m ->
      (* stream to the file as the ring drains, so memory stays bounded
         however long the run *)
      let record = Enoki.Record.create_file ~path:out ~format () in
      let b =
        Workloads.Setup.build ~record ~topology:(topology_of_cores cores)
          (Workloads.Setup.Enoki_sched m)
      in
      run_workload b workload ~load ~seed;
      Enoki.Record.close record;
      let d = Enoki.Record.dropped record in
      Printf.printf "recorded %d events to %s%s\n" (Enoki.Record.length record) out
        (if d > 0 then
           Printf.sprintf
             " — WARNING: %d events DROPPED (ring overrun); replay will refuse this log \
              without --allow-drops"
             d
         else " (0 dropped)")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run a workload with the record tap on and save the scheduler message log.")
    Term.(
      const run $ sched_arg $ workload_arg $ load_arg $ cores_arg $ out_arg $ seed_arg
      $ record_format_arg)

let log_arg =
  Arg.(
    required & opt (some string) None
    & info [ "log"; "l" ] ~docv:"PATH" ~doc:"Record log to replay.")

let window_arg =
  Arg.(
    value & opt int 3
    & info [ "window" ] ~docv:"N"
        ~doc:"Context entries to show either side of the divergent call (with --bisect).")

let replay_cmd =
  let run sched log allow_drops bisect window =
    match module_of_sched sched with
    | None ->
      prerr_endline ("replay requires " ^ enoki_scheds_hint);
      exit 2
    | Some m -> do_replay m ~path:log ~allow_drops ~bisect ~window
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a recorded message log against the same scheduler code at userspace and \
          validate its replies.")
    Term.(const run $ sched_arg $ log_arg $ allow_drops_arg $ bisect_arg $ window_arg)

let upgrade_cmd =
  let run sched workload load cores seed =
    match module_of_sched sched with
    | None -> prerr_endline ("upgrade requires " ^ enoki_scheds_hint)
    | Some m ->
      let b =
        Workloads.Setup.build ~topology:(topology_of_cores cores) (Workloads.Setup.Enoki_sched m)
      in
      let e = Option.get b.enoki in
      Kernsim.Machine.at b.machine ~delay:(Kernsim.Time.ms 100) (fun () ->
          match Enoki.Enoki_c.upgrade e m with
          | Ok s ->
            Printf.printf "live upgrade at t=100ms: pause %s, %d tasks carried\n"
              (Kernsim.Time.to_string s.Enoki.Upgrade.pause)
              s.Enoki.Upgrade.tasks_carried
          | Error exn -> Printf.printf "upgrade failed: %s\n" (Printexc.to_string exn));
      run_workload b workload ~load ~seed;
      print_summary b
  in
  Cmd.v
    (Cmd.info "upgrade" ~doc:"Run a workload and live-upgrade the scheduler 100ms in.")
    Term.(const run $ sched_arg $ workload_arg $ load_arg $ cores_arg $ seed_arg)

(* ---------- fleet ---------- *)

let lb_conv =
  let parse s =
    match Cluster.Lb.policy_of_string s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Cluster.Lb.policy_name p))

let fleet_hosts_arg =
  Arg.(value & opt int 8 & info [ "hosts" ] ~docv:"N" ~doc:"Number of simulated hosts.")

let fleet_scheds_arg =
  Arg.(
    value
    & opt (list sched_conv) []
    & info [ "scheds" ] ~docv:"LIST"
        ~doc:
          "Comma-separated scheduler names cycled across the hosts (heterogeneous fleets are \
           fine); defaults to $(b,wfq) everywhere.  Same vocabulary as $(b,--sched).")

let fleet_lb_arg =
  Arg.(
    value
    & opt lb_conv Cluster.Lb.Least_outstanding
    & info [ "lb" ] ~docv:"POLICY"
        ~doc:
          (Printf.sprintf "Load-balancing policy: %s."
             (String.concat ", "
                (List.map (Printf.sprintf "$(b,%s)") Cluster.Lb.policy_names))))

let fleet_duration_arg =
  Arg.(
    value & opt int 2000
    & info [ "duration" ] ~docv:"MS" ~doc:"Simulated run length in milliseconds.")

let fleet_flows_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flows" ] ~docv:"N"
        ~doc:
          "Run until the traffic engine has churned through $(docv) complete flows (capped by \
           $(b,--duration)); the bounded-memory scale check.")

let fleet_epoch_arg =
  Arg.(
    value & opt int 1000
    & info [ "epoch" ] ~docv:"US" ~doc:"Fleet coordination epoch in microseconds.")

let fleet_workers_arg =
  Arg.(value & opt int 6 & info [ "workers" ] ~docv:"N" ~doc:"Server tasks per host.")

let fleet_queue_cap_arg =
  Arg.(
    value & opt int 4096
    & info [ "queue-cap" ] ~docv:"N" ~doc:"Per-host ingress queue depth; overflow drops.")

let fleet_conns_arg =
  Arg.(
    value & opt int 256
    & info [ "connections" ] ~docv:"N" ~doc:"Connection slots per tenant (the live-flow pool).")

let fleet_flow_len_arg =
  Arg.(
    value & opt float 8.0
    & info [ "flow-len" ] ~docv:"MEAN" ~doc:"Mean requests per flow (connection churn rate).")

let fleet_upgrade_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "upgrade" ] ~docv:"MS"
        ~doc:
          "Rolling live upgrade: re-register each Enoki host's scheduler starting at $(docv) \
           ms, staggered by $(b,--stagger).")

let fleet_stagger_arg =
  Arg.(
    value & opt int 50
    & info [ "stagger" ] ~docv:"MS" ~doc:"Per-host stagger for the rolling upgrade.")

let fleet_chaos_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"HOST"
        ~doc:
          "Chaos drill: panic host $(docv)'s scheduler module mid-run (it must be an Enoki \
           host); the fleet drains, fails over and re-admits it.")

let fleet_chaos_after_arg =
  Arg.(
    value & opt int 20_000
    & info [ "chaos-after" ] ~docv:"CALLS" ~doc:"Scheduler calls before the drill panic fires.")

let fleet_anatomy_arg =
  Arg.(
    value & flag
    & info [ "anatomy" ]
        ~doc:
          "Decompose every request's end-to-end latency into six exactly summing phases (LB \
           decision, ingress wait, runqueue wait, service, preemption stall, migration cost) \
           and print the per-tenant breakdown plus the worst-request exemplars.")

let fleet_anatomy_top_arg =
  Arg.(
    value & opt int 8
    & info [ "anatomy-top" ] ~docv:"K" ~doc:"Worst-request exemplars to keep (default 8).")

let fleet_anatomy_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "anatomy-out" ] ~docv:"PATH"
        ~doc:
          "Write the top-K worst requests as a Chrome-trace flow-event timeline (arrows LB -> \
           host ingress -> runqueue -> worker) to $(docv); implies $(b,--anatomy).")

let fleet_jobs_arg =
  Arg.(
    value
    & opt ~vopt:(-1) int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Advance hosts in parallel on $(docv) OCaml domains.  Results are byte-identical to \
           the sequential run for any $(docv) — only wall clock changes.  0 (the default) runs \
           sequentially; bare $(b,-j) uses the machine's recommended domain count.")

let fleet_cmd =
  let run hosts scheds lb load cores duration flows epoch_us workers queue_cap connections
      flow_len seed upgrade_ms stagger_ms chaos_victim chaos_after anatomy anatomy_top
      anatomy_out jobs metrics_out metrics_interval =
    let anatomy = anatomy || anatomy_out <> None in
    let entries =
      match scheds with
      | [] -> (
        match Schedulers.Registry.find "wfq" with
        | Some e -> List.init hosts (fun _ -> e)
        | None -> assert false)
      | l -> List.init hosts (fun i -> List.nth l (i mod List.length l))
    in
    let seed = Option.value seed ~default:1 in
    let tenants = Cluster.Traffic.standard_mix ~connections ~flow_len ~load_kreqs:load () in
    let upgrade =
      Option.map
        (fun ms ->
          { Cluster.Fleet.at = Kernsim.Time.ms ms; stagger = Kernsim.Time.ms stagger_ms })
        upgrade_ms
    in
    let chaos =
      Option.map
        (fun victim ->
          { Cluster.Fleet.victim; after_calls = chaos_after; recovery = Kernsim.Time.ms 20 })
        chaos_victim
    in
    let jobs = if jobs < 0 then Domain.recommended_domain_count () else jobs in
    if jobs > hosts then
      Printf.eprintf
        "enoki_sim: fleet: -j %d exceeds %d hosts; the extra domains will idle\n%!" jobs hosts;
    let pool = if jobs > 1 then Some (Ds.Domain_pool.create ~domains:jobs ()) else None in
    let f =
      Cluster.Fleet.create ~topology:(topology_of_cores cores) ~workers ~queue_cap
        ~epoch:(Kernsim.Time.us epoch_us) ~warmup:(Kernsim.Time.ms 100) ?upgrade ?chaos ~lb
        ~anatomy ~anatomy_top ?pool ~seed ~hosts:entries ~tenants ()
    in
    Printf.printf "fleet: %d hosts (%s), lb %s, %.0fk req/s offered, seed %d\n" hosts
      (String.concat "," (List.map (fun (e : Schedulers.Registry.entry) -> e.name) entries))
      (Cluster.Lb.policy_name lb) load seed;
    (* drive epochs by hand so the sampler can tick at fleet scope: the
       lock-step fleet has no machine-level defer spanning hosts, so the
       --metrics-interval cadence is applied between epochs *)
    let sampler =
      Option.map (fun _ -> Metrics.Sampler.create ~interval:metrics_interval (Cluster.Fleet.registry f)) metrics_out
    in
    let next_sample = ref metrics_interval in
    let sample_up_to now =
      match sampler with
      | Some s ->
        while !next_sample <= now do
          Metrics.Sampler.flush s ~ts:!next_sample;
          next_sample := !next_sample + metrics_interval
        done
      | None -> ()
    in
    let limit = Kernsim.Time.ms duration in
    let keep_going =
      match flows with
      | Some n ->
        fun () ->
          Cluster.Traffic.flows_completed (Cluster.Fleet.traffic f) < n
          && Cluster.Fleet.clock f < limit
      | None -> fun () -> Cluster.Fleet.clock f < limit
    in
    (try
       while keep_going () do
         Cluster.Fleet.step f ~limit;
         sample_up_to (Cluster.Fleet.clock f)
       done
     with e ->
       Option.iter Ds.Domain_pool.shutdown pool;
       raise e);
    Option.iter Ds.Domain_pool.shutdown pool;
    (match sampler with
    | Some s when !next_sample - metrics_interval < Cluster.Fleet.clock f ->
      Metrics.Sampler.flush s ~ts:(Cluster.Fleet.clock f)
    | _ -> ());
    let tr = Cluster.Fleet.traffic f in
    Printf.printf "ran %s: %d flows (%d live), %d requests emitted\n"
      (Kernsim.Time.to_string (Cluster.Fleet.clock f))
      (Cluster.Traffic.flows_completed tr)
      (Cluster.Traffic.live_flows tr)
      (Cluster.Traffic.requests_emitted tr);
    Report.table
      ~header:[ "tenant"; "completed"; "dropped"; "rejected"; "p50"; "p99"; "p999" ]
      (List.map
         (fun (s : Cluster.Fleet.tenant_stat) ->
           [
             s.tenant;
             string_of_int s.completed;
             string_of_int s.dropped;
             string_of_int s.rejected;
             Kernsim.Time.to_string s.p50;
             Kernsim.Time.to_string s.p99;
             Kernsim.Time.to_string s.p999;
           ])
         (Cluster.Fleet.tenant_stats f));
    Report.table
      ~header:[ "host"; "sched"; "completed"; "p99"; "state" ]
      (List.map
         (fun (s : Cluster.Fleet.host_stat) ->
           [
             string_of_int s.host;
             s.sched;
             string_of_int s.completed;
             Kernsim.Time.to_string s.p99;
             (if s.drained then "drained"
              else if s.quarantined then "failed-over"
              else "up");
           ])
         (Cluster.Fleet.host_stats f));
    (match Cluster.Fleet.anatomy f with
    | Some a when anatomy ->
      Report.section "request anatomy";
      let phases = Trace.Anatomy.phases in
      Report.table
        ~header:
          ("tenant" :: "requests" :: "e2e mean"
          :: List.concat_map (fun ph -> [ Trace.Anatomy.phase_name ph; "%" ]) phases)
        (List.filteri
           (fun _ row -> row <> [])
           (Array.to_list
              (Array.mapi
                 (fun tn name ->
                   let count = Trace.Anatomy.tenant_count a tn in
                   if count = 0 then []
                   else
                     let e2e = Trace.Anatomy.tenant_e2e_sum a tn in
                     name
                     :: string_of_int count
                     :: Kernsim.Time.to_string (e2e / count)
                     :: List.concat_map
                          (fun ph ->
                            let sum = Trace.Anatomy.tenant_phase_sum a tn ph in
                            [
                              Kernsim.Time.to_string (sum / count);
                              Report.fmt_pct
                                (if e2e = 0 then 0.0
                                 else 100.0 *. float_of_int sum /. float_of_int e2e);
                            ])
                          phases)
                 (Trace.Anatomy.tenant_names a))));
      Report.note
        (Printf.sprintf "phases sum to e2e exactly: max error %d ns over %d requests%s"
           (Trace.Anatomy.max_sum_error a)
           (Trace.Anatomy.completions a)
           (if Trace.Anatomy.orphans a > 0 then
              Printf.sprintf " (%d orphaned contexts)" (Trace.Anatomy.orphans a)
            else ""));
      let exs = Trace.Anatomy.exemplars a in
      if exs <> [] then begin
        Report.section "worst requests";
        Report.table
          ~header:[ "req"; "tenant"; "host"; "worker"; "e2e"; "dominant phase" ]
          (List.map
             (fun (c : Trace.Anatomy.completion) ->
               let dominant =
                 List.fold_left
                   (fun (best, best_d) ph ->
                     let d = c.Trace.Anatomy.durations.(Trace.Anatomy.phase_index ph) in
                     if d > best_d then (ph, d) else (best, best_d))
                   (Trace.Anatomy.Lb_decision, -1)
                   phases
                 |> fst
               in
               let names = Trace.Anatomy.tenant_names a in
               [
                 string_of_int c.Trace.Anatomy.req;
                 (if c.Trace.Anatomy.tenant < Array.length names then
                    names.(c.Trace.Anatomy.tenant)
                  else string_of_int c.Trace.Anatomy.tenant);
                 string_of_int c.Trace.Anatomy.host;
                 string_of_int c.Trace.Anatomy.pid;
                 Kernsim.Time.to_string (Trace.Anatomy.e2e c);
                 Trace.Anatomy.phase_name dominant;
               ])
             exs)
      end;
      (match anatomy_out with
      | Some path ->
        (try
           Trace.Anatomy.save_chrome a ~path;
           Printf.printf "anatomy: top-%d exemplar timeline to %s\n" anatomy_top path
         with Sys_error msg ->
           Printf.eprintf "enoki_sim: cannot write anatomy trace: %s\n" msg;
           exit 2)
      | None -> ())
    | _ -> ());
    List.iter
      (fun (host, pause) ->
        Printf.printf "upgrade: host %d paused %s\n" host (Kernsim.Time.to_string pause))
      (Cluster.Fleet.upgrades f);
    if Cluster.Fleet.upgrade_failures f > 0 then
      Printf.printf "upgrade failures: %d\n" (Cluster.Fleet.upgrade_failures f);
    let bl = Cluster.Fleet.blackout f in
    if Stats.Histogram.count bl > 0 then
      Printf.printf "blackout window: %d requests, p99 %s, p999 %s\n" (Stats.Histogram.count bl)
        (Kernsim.Time.to_string (Stats.Histogram.percentile bl 99.0))
        (Kernsim.Time.to_string (Stats.Histogram.percentile bl 99.9));
    List.iter
      (fun (ts, host, op) ->
        Printf.printf "fleet op: %s host %d %s\n" (Kernsim.Time.to_string ts) host op)
      (Cluster.Fleet.oplog f);
    (match chaos with
    | Some _ ->
      Printf.printf "chaos drill: %s, sanitizer %s\n"
        (if Cluster.Fleet.converged f then "converged (victim re-admitted)"
         else "NOT converged")
        (if Cluster.Fleet.sanitizer_ok f then "clean" else "VIOLATIONS")
    | None -> ());
    (match metrics_out with
    | Some path ->
      let fmt = Metrics.Export.format_of_path path in
      (try Metrics.Export.save ~path ?sampler fmt (Cluster.Fleet.registry f)
       with
      | Sys_error msg ->
        Printf.eprintf "enoki_sim: cannot write metrics: %s\n" msg;
        exit 2
      | Invalid_argument msg ->
        Printf.eprintf "enoki_sim: cannot write metrics: %s\n" msg;
        exit 2);
      Printf.printf "metrics: fleet registry to %s (%d samples)\n" path
        (match sampler with Some s -> List.length (Metrics.Sampler.samples s) | None -> 0)
    | None -> ());
    if (chaos <> None && not (Cluster.Fleet.converged f)) || not (Cluster.Fleet.sanitizer_ok f)
    then exit 3
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Drive a simulated fleet: N hosts behind a load balancer under open-loop multi-tenant \
          traffic, with optional rolling live upgrades and chaos drills.")
    Term.(
      const run $ fleet_hosts_arg $ fleet_scheds_arg $ fleet_lb_arg $ load_arg $ cores_arg
      $ fleet_duration_arg $ fleet_flows_arg $ fleet_epoch_arg $ fleet_workers_arg
      $ fleet_queue_cap_arg $ fleet_conns_arg $ fleet_flow_len_arg $ seed_arg $ fleet_upgrade_arg
      $ fleet_stagger_arg $ fleet_chaos_arg $ fleet_chaos_after_arg $ fleet_anatomy_arg
      $ fleet_anatomy_top_arg $ fleet_anatomy_out_arg $ fleet_jobs_arg $ metrics_out_arg
      $ metrics_interval_arg)

let () =
  let doc = "Enoki scheduler-framework simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "enoki_sim" ~doc)
          [ run_cmd; record_cmd; replay_cmd; upgrade_cmd; fleet_cmd ]))
